//! The multi-threaded measurement driver: runs a [`WorkloadPlan`] over
//! any [`ConcurrentIndex`] and reports throughput plus sampled tail
//! latencies (the paper reports million ops/sec and P99.9 µs).

use crate::histogram::LatencyHistogram;
use crate::mix::Op;
use crate::ops::WorkloadPlan;
use index_api::ConcurrentIndex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Driver knobs.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Measure latency on every `latency_sample_every`-th operation
    /// (1 = all; higher values keep the timer overhead off the hot path).
    pub latency_sample_every: usize,
    /// Batched-read width: `>= 2` buffers consecutive `Op::Read`s and
    /// issues them through [`ConcurrentIndex::get_batch`] (flushing early
    /// at any write/scan so ordering against mutations is preserved);
    /// `0` or `1` keeps the scalar read path. Sampled latencies then
    /// measure whole-batch flushes rather than single reads.
    pub batch: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            ops_per_thread: 100_000,
            latency_sample_every: 16,
            batch: 0,
        }
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total operations executed.
    pub total_ops: usize,
    /// Wall-clock seconds (max across threads).
    pub secs: f64,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Median sampled latency, microseconds.
    pub p50_us: f64,
    /// 99th percentile sampled latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile sampled latency, microseconds — the paper's tail
    /// metric.
    pub p999_us: f64,
    /// Reads that found a key (sanity signal; should be ~100% for
    /// key-recall workloads).
    pub read_hits: usize,
    /// Total reads issued.
    pub reads: usize,
    /// Inserts that were rejected as duplicates (should be 0 with
    /// disjoint reserve slices).
    pub failed_inserts: usize,
}

/// Results of one bucketed run ([`run_streams_timed`]).
#[derive(Debug, Clone)]
pub struct TimedResult {
    /// Total operations executed.
    pub total_ops: usize,
    /// Wall-clock seconds (max across threads).
    pub secs: f64,
    /// Overall throughput in million operations per second.
    pub mops: f64,
    /// Width of each time bucket in milliseconds.
    pub bucket_ms: u64,
    /// Operations completed per fixed-width time bucket since the
    /// barrier, summed across threads. `buckets[i]` covers
    /// `[i * bucket_ms, (i+1) * bucket_ms)`; throughput-over-time curves
    /// plot `buckets[i] / bucket_ms` against `i * bucket_ms`.
    pub buckets: Vec<u64>,
    /// Inserts rejected as duplicates (0 for thread-disjoint streams).
    pub failed_inserts: usize,
}

impl TimedResult {
    /// Per-bucket throughput in million ops/sec, for curve plotting.
    pub fn bucket_mops(&self) -> Vec<f64> {
        let per_sec = 1_000.0 / self.bucket_ms as f64;
        self.buckets
            .iter()
            .map(|&n| n as f64 * per_sec / 1e6)
            .collect()
    }
}

/// Run one explicit operation stream per thread with sampled latency
/// measurement — [`run_workload`]'s measurement (throughput + P50/P99/
/// P99.9), but over caller-supplied streams (e.g.
/// [`crate::YcsbPlan::stream`]) instead of a [`WorkloadPlan`].
pub fn run_streams<I, S>(index: &I, streams: Vec<S>, latency_sample_every: usize) -> RunResult
where
    I: ConcurrentIndex + ?Sized + Sync,
    S: Iterator<Item = Op> + Send,
{
    let sample_every = latency_sample_every.max(1);
    let barrier = Barrier::new(streams.len().max(1));
    let per_thread: Vec<(f64, LatencyHistogram, usize, usize, usize, usize)> =
        std::thread::scope(|s| {
            let barrier = &barrier;
            let handles: Vec<_> = streams
                .into_iter()
                .map(|stream| {
                    s.spawn(move || {
                        let mut lat = LatencyHistogram::new();
                        let mut scan_buf: Vec<(u64, u64)> = Vec::with_capacity(128);
                        let mut reads = 0usize;
                        let mut hits = 0usize;
                        let mut failed = 0usize;
                        let mut n = 0usize;
                        barrier.wait();
                        let start = Instant::now();
                        for op in stream {
                            let sampled = n.is_multiple_of(sample_every);
                            let t0 = if sampled { Some(Instant::now()) } else { None };
                            match op {
                                Op::Read(k) => {
                                    reads += 1;
                                    if index.get(k).is_some() {
                                        hits += 1;
                                    }
                                }
                                Op::Insert(k, v) => {
                                    if index.insert(k, v).is_err() {
                                        failed += 1;
                                    }
                                }
                                Op::Remove(k) => {
                                    index.remove(k);
                                }
                                Op::Scan(k, len) => {
                                    scan_buf.clear();
                                    index.scan(k, len, &mut scan_buf);
                                }
                            }
                            if let Some(t0) = t0 {
                                lat.record(t0.elapsed().as_nanos() as u64);
                            }
                            n += 1;
                        }
                        (start.elapsed().as_secs_f64(), lat, n, reads, hits, failed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

    let mut all_lat = LatencyHistogram::new();
    let mut max_secs = 0.0f64;
    let mut total_ops = 0usize;
    let mut reads = 0usize;
    let mut read_hits = 0usize;
    let mut failed_inserts = 0usize;
    for (secs, lat, n, r, h, f) in per_thread {
        max_secs = max_secs.max(secs);
        all_lat.merge(&lat);
        total_ops += n;
        reads += r;
        read_hits += h;
        failed_inserts += f;
    }
    let pct = |p: f64| -> f64 { all_lat.quantile(p) as f64 / 1_000.0 };
    RunResult {
        total_ops,
        secs: max_secs,
        mops: if max_secs > 0.0 {
            total_ops as f64 / max_secs / 1e6
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        read_hits,
        reads,
        failed_inserts,
    }
}

/// Run one explicit operation stream per thread, recording per-bucket
/// op completions — the throughput-over-time measurement behind the
/// retrain-stall curves. Unlike [`run_workload`] the streams are
/// supplied by the caller (e.g. [`crate::ShiftPlan::stream`]), so the
/// same deterministic streams can be replayed against a second index.
pub fn run_streams_timed<I, S>(index: &I, streams: Vec<S>, bucket_ms: u64) -> TimedResult
where
    I: ConcurrentIndex + ?Sized + Sync,
    S: Iterator<Item = Op> + Send,
{
    let threads = streams.len().max(1);
    let bucket_ms = bucket_ms.max(1);
    let barrier = Barrier::new(threads);
    let per_thread: Vec<(f64, Vec<u64>, usize, usize)> = std::thread::scope(|s| {
        let barrier = &barrier;
        let handles: Vec<_> = streams
            .into_iter()
            .map(|stream| {
                s.spawn(move || {
                    let mut buckets: Vec<u64> = Vec::new();
                    let mut scan_buf: Vec<(u64, u64)> = Vec::with_capacity(128);
                    let mut failed = 0usize;
                    let mut n = 0usize;
                    barrier.wait();
                    let start = Instant::now();
                    for op in stream {
                        match op {
                            Op::Read(k) => {
                                let _ = index.get(k);
                            }
                            Op::Insert(k, v) => {
                                if index.insert(k, v).is_err() {
                                    failed += 1;
                                }
                            }
                            Op::Remove(k) => {
                                index.remove(k);
                            }
                            Op::Scan(k, len) => {
                                scan_buf.clear();
                                index.scan(k, len, &mut scan_buf);
                            }
                        }
                        n += 1;
                        let b = (start.elapsed().as_millis() as u64 / bucket_ms) as usize;
                        if b >= buckets.len() {
                            buckets.resize(b + 1, 0);
                        }
                        buckets[b] += 1;
                    }
                    (start.elapsed().as_secs_f64(), buckets, n, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut merged: Vec<u64> = Vec::new();
    let mut max_secs = 0.0f64;
    let mut total_ops = 0usize;
    let mut failed_inserts = 0usize;
    for (secs, buckets, n, failed) in per_thread {
        max_secs = max_secs.max(secs);
        total_ops += n;
        failed_inserts += failed;
        if buckets.len() > merged.len() {
            merged.resize(buckets.len(), 0);
        }
        for (m, b) in merged.iter_mut().zip(buckets) {
            *m += b;
        }
    }
    TimedResult {
        total_ops,
        secs: max_secs,
        mops: if max_secs > 0.0 {
            total_ops as f64 / max_secs / 1e6
        } else {
            0.0
        },
        bucket_ms,
        buckets: merged,
        failed_inserts,
    }
}

/// Drain the buffered read keys through `get_batch`, recording the
/// flush latency when sampled and folding hits into the read counters.
#[allow(clippy::too_many_arguments)]
fn flush_batch<I: ConcurrentIndex + ?Sized>(
    index: &I,
    keys: &mut Vec<u64>,
    out: &mut [Option<u64>],
    sampled: bool,
    lat: &mut LatencyHistogram,
    reads: &mut usize,
    hits: &mut usize,
) {
    if keys.is_empty() {
        return;
    }
    let t0 = sampled.then(Instant::now);
    index.get_batch(keys, &mut out[..keys.len()]);
    if let Some(t0) = t0 {
        lat.record(t0.elapsed().as_nanos() as u64);
    }
    *reads += keys.len();
    *hits += out[..keys.len()].iter().filter(|o| o.is_some()).count();
    keys.clear();
}

/// Run `plan` over `index` with `cfg`. Blocks until all threads finish.
pub fn run_workload<I: ConcurrentIndex + ?Sized + 'static>(
    index: &Arc<I>,
    plan: &WorkloadPlan,
    cfg: &DriverConfig,
) -> RunResult {
    let threads = cfg.threads.max(1);
    let barrier = Arc::new(Barrier::new(threads));
    let read_hits = Arc::new(AtomicUsize::new(0));
    let reads = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let index = Arc::clone(index);
        let barrier = Arc::clone(&barrier);
        let read_hits = Arc::clone(&read_hits);
        let reads = Arc::clone(&reads);
        let failed = Arc::clone(&failed);
        let stream = plan.stream(t, threads, cfg.ops_per_thread);
        let sample_every = cfg.latency_sample_every.max(1);
        let batch = cfg.batch;
        handles.push(std::thread::spawn(move || {
            let mut lat = LatencyHistogram::new();
            let mut scan_buf: Vec<(u64, u64)> = Vec::with_capacity(128);
            let mut batch_keys: Vec<u64> = Vec::with_capacity(batch);
            let mut batch_out: Vec<Option<u64>> = vec![None; batch.max(1)];
            let mut flushes = 0usize;
            let mut local_reads = 0usize;
            let mut local_hits = 0usize;
            let mut local_failed = 0usize;
            barrier.wait();
            let start = Instant::now();
            let mut n = 0usize;
            for op in stream {
                if batch >= 2 {
                    // Buffer consecutive reads; a write or scan flushes
                    // first so the read sees every earlier mutation.
                    if let Op::Read(k) = op {
                        batch_keys.push(k);
                        n += 1;
                        if batch_keys.len() == batch {
                            flush_batch(
                                &*index,
                                &mut batch_keys,
                                &mut batch_out,
                                flushes.is_multiple_of(sample_every),
                                &mut lat,
                                &mut local_reads,
                                &mut local_hits,
                            );
                            flushes += 1;
                        }
                        continue;
                    }
                    if !batch_keys.is_empty() {
                        flush_batch(
                            &*index,
                            &mut batch_keys,
                            &mut batch_out,
                            flushes.is_multiple_of(sample_every),
                            &mut lat,
                            &mut local_reads,
                            &mut local_hits,
                        );
                        flushes += 1;
                    }
                }
                let sampled = n.is_multiple_of(sample_every);
                let t0 = if sampled { Some(Instant::now()) } else { None };
                match op {
                    Op::Read(k) => {
                        local_reads += 1;
                        if index.get(k).is_some() {
                            local_hits += 1;
                        }
                    }
                    Op::Insert(k, v) => {
                        if index.insert(k, v).is_err() {
                            local_failed += 1;
                        }
                    }
                    Op::Remove(k) => {
                        index.remove(k);
                    }
                    Op::Scan(k, len) => {
                        scan_buf.clear();
                        index.scan(k, len, &mut scan_buf);
                    }
                }
                if let Some(t0) = t0 {
                    lat.record(t0.elapsed().as_nanos() as u64);
                }
                n += 1;
            }
            flush_batch(
                &*index,
                &mut batch_keys,
                &mut batch_out,
                flushes.is_multiple_of(sample_every),
                &mut lat,
                &mut local_reads,
                &mut local_hits,
            );
            let secs = start.elapsed().as_secs_f64();
            read_hits.fetch_add(local_hits, Ordering::Relaxed);
            reads.fetch_add(local_reads, Ordering::Relaxed);
            failed.fetch_add(local_failed, Ordering::Relaxed);
            (secs, lat, n)
        }));
    }

    let mut all_lat = LatencyHistogram::new();
    let mut max_secs = 0.0f64;
    let mut total_ops = 0usize;
    for h in handles {
        let (secs, lat, n) = h.join().expect("worker panicked");
        max_secs = max_secs.max(secs);
        all_lat.merge(&lat);
        total_ops += n;
    }
    let pct = |p: f64| -> f64 { all_lat.quantile(p) as f64 / 1_000.0 };
    RunResult {
        total_ops,
        secs: max_secs,
        mops: if max_secs > 0.0 {
            total_ops as f64 / max_secs / 1e6
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        read_hits: read_hits.load(Ordering::Relaxed),
        reads: reads.load(Ordering::Relaxed),
        failed_inserts: failed.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::Mix;
    use index_api::{BulkLoad, IndexError, Key, Result, Value};
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Locked BTreeMap reference index for driver tests.
    struct RefIndex(Mutex<BTreeMap<Key, Value>>);

    impl ConcurrentIndex for RefIndex {
        fn get(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn insert(&self, key: Key, value: Value) -> Result<()> {
            let mut m = self.0.lock().unwrap();
            if m.contains_key(&key) {
                return Err(IndexError::DuplicateKey);
            }
            m.insert(key, value);
            Ok(())
        }
        fn update(&self, key: Key, value: Value) -> Result<()> {
            match self.0.lock().unwrap().get_mut(&key) {
                Some(v) => {
                    *v = value;
                    Ok(())
                }
                None => Err(IndexError::KeyNotFound),
            }
        }
        fn remove(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().remove(&key)
        }
        fn range(&self, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) -> usize {
            let m = self.0.lock().unwrap();
            let before = out.len();
            out.extend(m.range(lo..=hi).map(|(&k, &v)| (k, v)));
            out.len() - before
        }
        fn memory_usage(&self) -> usize {
            self.0.lock().unwrap().len() * 16
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
        fn name(&self) -> &'static str {
            "ref"
        }
    }

    impl BulkLoad for RefIndex {
        fn bulk_load(pairs: &[(Key, Value)]) -> Self {
            Self(Mutex::new(pairs.iter().copied().collect()))
        }
    }

    #[test]
    fn balanced_run_reports_sane_numbers() {
        let loaded: Vec<u64> = (1..=5_000u64).map(|i| i * 2).collect();
        let reserve: Vec<u64> = (1..=5_000u64).map(|i| i * 2 + 1).collect();
        let pairs: Vec<(u64, u64)> = loaded.iter().map(|&k| (k, k)).collect();
        let idx = Arc::new(RefIndex::bulk_load(&pairs));
        let plan = WorkloadPlan::new(loaded, reserve, Mix::BALANCED, 0.99, 1);
        let cfg = DriverConfig {
            threads: 4,
            ops_per_thread: 2_000,
            latency_sample_every: 4,
            batch: 0,
        };
        let r = run_workload(&idx, &plan, &cfg);
        assert_eq!(r.total_ops, 8_000);
        assert!(r.mops > 0.0);
        assert!(r.p999_us >= r.p99_us && r.p99_us >= r.p50_us);
        assert_eq!(r.failed_inserts, 0, "reserve slices are disjoint");
        assert_eq!(r.read_hits, r.reads, "every read key was loaded");
    }

    #[test]
    fn batched_run_matches_scalar_counters() {
        let loaded: Vec<u64> = (1..=5_000u64).map(|i| i * 2).collect();
        let reserve: Vec<u64> = (1..=5_000u64).map(|i| i * 2 + 1).collect();
        let pairs: Vec<(u64, u64)> = loaded.iter().map(|&k| (k, k)).collect();
        let idx = Arc::new(RefIndex::bulk_load(&pairs));
        let plan = WorkloadPlan::new(loaded, reserve, Mix::BALANCED, 0.99, 1);
        let mut cfg = DriverConfig {
            threads: 2,
            ops_per_thread: 2_000,
            latency_sample_every: 4,
            batch: 0,
        };
        let scalar = run_workload(&idx, &plan, &cfg);
        cfg.batch = 16;
        let idx = Arc::new(RefIndex::bulk_load(&pairs));
        let batched = run_workload(&idx, &plan, &cfg);
        // Same plan, fresh index: identical op/read/hit accounting, every
        // op executed exactly once through either path.
        assert_eq!(batched.total_ops, scalar.total_ops);
        assert_eq!(batched.reads, scalar.reads);
        assert_eq!(batched.read_hits, scalar.read_hits);
        assert_eq!(batched.failed_inserts, 0);
        assert!(batched.mops > 0.0);
    }

    #[test]
    fn timed_run_buckets_account_for_every_op() {
        use crate::shift::{ShiftKind, ShiftPlan};
        let plan = ShiftPlan::new(ShiftKind::RollingWindow, 11);
        let idx = Arc::new(RefIndex::bulk_load(&plan.initial_pairs()));
        let threads = 2;
        let ops = 5_000;
        let streams: Vec<_> = (0..threads).map(|t| plan.stream(t, threads, ops)).collect();
        let r = run_streams_timed(&*idx, streams, 5);
        assert_eq!(r.total_ops, threads * ops);
        assert_eq!(
            r.buckets.iter().sum::<u64>() as usize,
            r.total_ops,
            "every op lands in exactly one bucket"
        );
        assert_eq!(r.failed_inserts, 0, "shift streams are thread-disjoint");
        assert_eq!(r.bucket_ms, 5);
        assert!(r.mops > 0.0);
        assert_eq!(r.bucket_mops().len(), r.buckets.len());
    }

    #[test]
    fn scan_workload_runs() {
        let loaded: Vec<u64> = (1..=2_000u64).map(|i| i * 3).collect();
        let pairs: Vec<(u64, u64)> = loaded.iter().map(|&k| (k, k)).collect();
        let idx = Arc::new(RefIndex::bulk_load(&pairs));
        let plan = WorkloadPlan::new(loaded, Vec::new(), Mix::SCAN, 0.5, 2);
        let cfg = DriverConfig {
            threads: 2,
            ops_per_thread: 200,
            latency_sample_every: 1,
            batch: 0,
        };
        let r = run_workload(&idx, &plan, &cfg);
        assert_eq!(r.total_ops, 400);
        assert_eq!(r.reads, 0);
    }
}
