//! Workload generation and the multi-threaded measurement driver for the
//! ALT-index evaluation (§IV-A2 of the paper).
//!
//! * [`zipf`] — a zipfian sampler (θ = 0.99 by default, as in the paper).
//! * [`mix`] — the seven workload shapes: read-only, read-heavy,
//!   read-write-balanced, write-heavy, write-only, hot-write, and scan.
//! * [`ops`] — per-thread operation streams: zipfian reads over the
//!   bulk-loaded keys, uniformly distributed inserts from a reserved
//!   pool, 100-key scans.
//! * [`shift`] — distribution-shift streams (monotonic append, rolling
//!   window, sudden mid-run shift) for exercising retraining.
//! * [`ycsb`] — YCSB scenarios D (latest-read) and E (scan-heavy), the
//!   two shapes the classic mixes don't cover.
//! * [`driver`] — spawns N threads over any
//!   [`index_api::ConcurrentIndex`], measuring throughput and sampled
//!   P50/P99/P99.9 latencies; [`driver::run_streams_timed`] additionally
//!   records throughput per fixed-width time bucket, the measurement
//!   behind the retrain-stall curves.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod histogram;
pub mod mix;
pub mod ops;
pub mod shift;
pub mod ycsb;
pub mod zipf;

pub use driver::{
    run_streams, run_streams_timed, run_workload, DriverConfig, RunResult, TimedResult,
};
pub use histogram::LatencyHistogram;
pub use mix::{Mix, Op};
pub use ops::{OpStream, WorkloadPlan};
pub use shift::{ShiftKind, ShiftPlan, ShiftStream};
pub use ycsb::{YcsbKind, YcsbPlan, YcsbStream};
pub use zipf::Zipf;
