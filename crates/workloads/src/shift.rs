//! Distribution-shift workload generators for exercising retraining:
//! streams whose key distribution *changes over the run*, so the index
//! must rebuild models mid-flight to keep up.
//!
//! Three shapes:
//!
//! * [`ShiftKind::Append`] — monotonic time-series append: every insert
//!   lands past the current maximum, continuously growing the tail span.
//! * [`ShiftKind::RollingWindow`] — delete-at-tail / insert-at-head
//!   churn with a constant live-set size, the retention-window pattern
//!   of metric stores.
//! * [`ShiftKind::SuddenShift`] — a mid-run regime change: the first
//!   half densifies the preloaded region with gap keys, the second half
//!   abruptly appends a dense block in untouched key space.
//!
//! Determinism and replayability are load-bearing: a stream is a pure
//! function of `(plan, thread, threads, ops)`, and **every key a thread
//! touches — reads included — is owned by that thread** (global key
//! index ≡ thread id mod thread count). That makes the generated runs
//! directly checkable by the testkit's per-thread sequential-replay
//! oracle, and lets a second index replay the identical streams for
//! inline-vs-background A/B comparisons.

use crate::mix::Op;
use datasets::rng::SplitMix64;

/// Distance between adjacent base-grid keys. Gap keys (base + 1) fall
/// strictly between grid keys, so `SuddenShift`'s densification phase
/// never collides with the preload.
pub const KEY_STRIDE: u64 = 4;

/// The base-grid key for global index `idx` (indices start at 0, keys
/// start at `KEY_STRIDE` so key 0 — ALT's reserved sentinel — is never
/// generated).
#[inline]
pub fn grid_key(idx: u64) -> u64 {
    (idx + 1) * KEY_STRIDE
}

/// Which distribution shift a plan generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftKind {
    /// Monotonic append past the preloaded maximum (time-series).
    Append,
    /// Insert at the head, remove at the tail; live size stays constant.
    RollingWindow,
    /// Mid-run regime change: densify the preload, then dense-append far
    /// away.
    SuddenShift,
}

impl ShiftKind {
    /// All kinds, in bench/report order.
    pub const ALL: [ShiftKind; 3] = [
        ShiftKind::Append,
        ShiftKind::RollingWindow,
        ShiftKind::SuddenShift,
    ];

    /// Stable label used in `#json` rows and test names.
    pub fn label(&self) -> &'static str {
        match self {
            ShiftKind::Append => "append",
            ShiftKind::RollingWindow => "rolling-window",
            ShiftKind::SuddenShift => "sudden-shift",
        }
    }
}

/// A deterministic shift-workload plan. Streams derived from the same
/// plan with the same `(thread, threads, ops)` are identical.
#[derive(Debug, Clone)]
pub struct ShiftPlan {
    /// The distribution shape.
    pub kind: ShiftKind,
    /// Base-grid keys preloaded before the run ([`Self::initial_pairs`]).
    pub preload: u64,
    /// Percent of operations that are point reads (the rest mutate).
    pub read_pct: u8,
    /// Base RNG seed; the thread id is mixed in per stream.
    pub seed: u64,
}

impl ShiftPlan {
    /// A plan with kind-appropriate defaults: appends and sudden shifts
    /// run write-heavy (20% reads) to stress retraining, the rolling
    /// window balances churn against reads (50%).
    pub fn new(kind: ShiftKind, seed: u64) -> Self {
        let read_pct = match kind {
            ShiftKind::RollingWindow => 50,
            _ => 20,
        };
        Self {
            kind,
            preload: 50_000,
            read_pct,
            seed,
        }
    }

    /// The pairs to bulk-load before running: the first `preload`
    /// base-grid keys, values under the `k ^ 0x5555` convention.
    pub fn initial_pairs(&self) -> Vec<(u64, u64)> {
        (0..self.preload)
            .map(|i| {
                let k = grid_key(i);
                (k, k ^ 0x5555)
            })
            .collect()
    }

    /// The operation stream for one of `threads` workers, `ops` long.
    /// Stateless: calling this twice yields identical streams.
    pub fn stream(&self, thread: usize, threads: usize, ops: usize) -> ShiftStream {
        assert!(thread < threads, "thread {thread} out of {threads}");
        let t = thread as u64;
        let n = threads as u64;
        // Smallest owned index >= preload: the first fresh insert slot.
        let head = self.preload + (t + n - self.preload % n) % n;
        ShiftStream {
            kind: self.kind,
            read_pct: self.read_pct as u64,
            preload: self.preload,
            thread: t,
            threads: n,
            rng: SplitMix64::new(self.seed ^ (thread as u64).wrapping_mul(0x5851_F42D_4C95_7F2D)),
            remaining: ops,
            total: ops,
            head,
            tail: t,
            gap: t,
            dense: t,
            mutate_toggle: false,
        }
    }
}

/// Iterator over one thread's operations (see [`ShiftPlan::stream`]).
#[derive(Debug, Clone)]
pub struct ShiftStream {
    kind: ShiftKind,
    read_pct: u64,
    preload: u64,
    thread: u64,
    threads: u64,
    rng: SplitMix64,
    remaining: usize,
    total: usize,
    /// Next owned base-grid index to insert (Append / RollingWindow).
    head: u64,
    /// Oldest live owned base-grid index (RollingWindow removes here).
    tail: u64,
    /// Next owned preload index to densify with a gap key (SuddenShift
    /// phase A).
    gap: u64,
    /// Next owned offset in the dense block (SuddenShift phase B).
    dense: u64,
    mutate_toggle: bool,
}

impl ShiftStream {
    /// First key past every gap key: the dense block of `SuddenShift`'s
    /// second phase starts here.
    fn dense_base(&self) -> u64 {
        grid_key(self.preload) * 2
    }

    /// A read of a uniformly chosen key this thread knows to be live.
    fn read_op(&mut self) -> Op {
        let (lo, hi) = match self.kind {
            // Append: everything from this thread's first owned index up
            // to (excluding) the next insert slot is live.
            ShiftKind::Append => (self.thread, self.head),
            // RollingWindow: live owned indices are [tail, head).
            ShiftKind::RollingWindow => (self.tail, self.head),
            ShiftKind::SuddenShift => {
                // Dense-phase reads target the new regime once this
                // thread has inserted there; otherwise the preload.
                if self.dense > self.thread {
                    let r = self
                        .rng
                        .next_below((self.dense - self.thread) / self.threads);
                    return Op::Read(self.dense_base() + self.thread + r * self.threads);
                }
                (self.thread, self.preload)
            }
        };
        debug_assert!(lo < hi && lo % self.threads == self.thread);
        let r = self.rng.next_below((hi - lo).div_ceil(self.threads));
        Op::Read(grid_key(lo + r * self.threads))
    }

    fn insert_op(k: u64) -> Op {
        Op::Insert(k, k ^ 0x5555)
    }

    fn mutate_op(&mut self) -> Op {
        match self.kind {
            ShiftKind::Append => {
                let k = grid_key(self.head);
                self.head += self.threads;
                Self::insert_op(k)
            }
            ShiftKind::RollingWindow => {
                self.mutate_toggle = !self.mutate_toggle;
                if self.mutate_toggle || self.tail + self.threads > self.head {
                    let k = grid_key(self.head);
                    self.head += self.threads;
                    Self::insert_op(k)
                } else {
                    let k = grid_key(self.tail);
                    self.tail += self.threads;
                    Op::Remove(k)
                }
            }
            ShiftKind::SuddenShift => {
                let phase_a = self.total - self.remaining < self.total / 2;
                if phase_a && self.gap < self.preload {
                    // Densify: a gap key strictly between two grid keys.
                    let k = grid_key(self.gap) + 1;
                    self.gap += self.threads;
                    Self::insert_op(k)
                } else if phase_a {
                    // Gap slots exhausted early: degrade to reads.
                    self.read_op()
                } else {
                    // Phase B: dense stride-1 block in fresh key space,
                    // interleaved across threads.
                    let k = self.dense_base() + self.dense;
                    self.dense += self.threads;
                    Self::insert_op(k)
                }
            }
        }
    }
}

impl Iterator for ShiftStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        let op = if self.rng.next_below(100) < self.read_pct {
            self.read_op()
        } else {
            self.mutate_op()
        };
        self.remaining -= 1;
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn replay(kind: ShiftKind, threads: usize, ops: usize) -> BTreeMap<u64, u64> {
        // Per-thread sequential replay against a model map must never
        // see a duplicate insert, a missing remove, or a stale read.
        let plan = ShiftPlan::new(kind, 42);
        let mut model: BTreeMap<u64, u64> = plan.initial_pairs().into_iter().collect();
        for t in 0..threads {
            for op in plan.stream(t, threads, ops) {
                match op {
                    Op::Read(k) => assert!(
                        model.contains_key(&k),
                        "{}: thread {t} read missing key {k}",
                        kind.label()
                    ),
                    Op::Insert(k, v) => assert!(
                        model.insert(k, v).is_none(),
                        "{}: thread {t} duplicate insert {k}",
                        kind.label()
                    ),
                    Op::Remove(k) => assert!(
                        model.remove(&k).is_some(),
                        "{}: thread {t} removed missing key {k}",
                        kind.label()
                    ),
                    Op::Scan(..) => unreachable!("shift plans do not scan"),
                }
            }
        }
        model
    }

    #[test]
    fn all_kinds_replay_cleanly_single_and_multi_thread() {
        // Thread-disjoint ownership means per-thread sequential replay
        // is exact even though real runs interleave threads.
        for kind in ShiftKind::ALL {
            for threads in [1usize, 3, 4] {
                replay(kind, threads, 20_000);
            }
        }
    }

    #[test]
    fn append_only_grows_the_tail() {
        let plan = ShiftPlan::new(ShiftKind::Append, 7);
        let max_preloaded = grid_key(plan.preload - 1);
        for op in plan.stream(0, 2, 10_000) {
            if let Op::Insert(k, _) = op {
                assert!(k > max_preloaded, "append insert {k} inside preload");
            }
        }
    }

    #[test]
    fn rolling_window_keeps_live_size_bounded() {
        let plan = ShiftPlan::new(ShiftKind::RollingWindow, 7);
        let model = replay(ShiftKind::RollingWindow, 2, 40_000);
        // Inserts and removes alternate, so the live set stays within
        // one insert of the preload size.
        let slack: u64 = 2; // = threads
        assert!(
            (model.len() as u64) <= plan.preload + slack,
            "live size {} grew past preload {}",
            model.len(),
            plan.preload
        );
    }

    #[test]
    fn sudden_shift_changes_regime_at_halftime() {
        let plan = ShiftPlan::new(ShiftKind::SuddenShift, 7);
        let ops = 30_000usize;
        let stream = plan.stream(0, 1, ops);
        let dense_base = grid_key(plan.preload) * 2;
        let inserts: Vec<(usize, u64)> = stream
            .enumerate()
            .filter_map(|(i, op)| match op {
                Op::Insert(k, _) => Some((i, k)),
                _ => None,
            })
            .collect();
        let (a, b): (Vec<_>, Vec<_>) = inserts.iter().partition(|(i, _)| *i < ops / 2);
        assert!(!a.is_empty() && !b.is_empty());
        assert!(
            a.iter()
                .all(|(_, k)| *k < dense_base && k % KEY_STRIDE == 1),
            "phase A must densify with gap keys"
        );
        assert!(
            b.iter().all(|(_, k)| *k >= dense_base),
            "phase B must land in the dense block"
        );
    }

    #[test]
    fn streams_are_stateless_and_thread_seeded() {
        let plan = ShiftPlan::new(ShiftKind::Append, 9);
        let a: Vec<Op> = plan.stream(1, 4, 5_000).collect();
        let b: Vec<Op> = plan.stream(1, 4, 5_000).collect();
        assert_eq!(a, b, "same (thread, threads, ops) must replay exactly");
        let c: Vec<Op> = plan.stream(2, 4, 5_000).collect();
        assert_ne!(a, c, "different threads must diverge");
    }
}
