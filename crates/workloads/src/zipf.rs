//! Zipfian rank sampler after Gray et al. ("Quickly generating
//! billion-record synthetic databases", SIGMOD 1994) — the standard YCSB
//! construction. The paper's read operations "follow a zipfian
//! distribution with 0.99 theta".

use datasets::rng::SplitMix64;

/// A zipfian sampler over ranks `[0, n)` with skew θ.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Sampler over `n` items with skew `theta` in `[0, 1)` (0 = uniform,
    /// 0.99 = the paper's default).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!((0.0..1.0).contains(&theta), "theta in [0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2: zeta2.max(0.0),
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.theta == 0.0 {
            return rng.next_below(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The θ this sampler was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Unused-field silencer with meaning: ζ(2, θ), exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for small n; integral approximation + boundary terms for
    // large n (accurate to ~1e-4, plenty for workload skew).
    if n <= 10_000 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let a = 10_000f64;
        let b = n as f64;
        head + ((b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta))
            + 0.5 * (1.0 / b.powf(theta) - 1.0 / a.powf(theta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut rng = SplitMix64::new(2);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "min {min} max {max}");
    }

    #[test]
    fn high_theta_concentrates_on_head() {
        let z = Zipf::new(1_000_000, 0.99);
        let mut rng = SplitMix64::new(3);
        let n = 100_000;
        let head = (0..n).filter(|_| z.sample(&mut rng) < 1000).count();
        // With θ=0.99 the hottest 0.1% of items draw a large share.
        assert!(
            head as f64 / n as f64 > 0.3,
            "head share {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn skew_increases_with_theta() {
        fn share(theta: f64, seed: u64) -> f64 {
            let mut rng = SplitMix64::new(seed);
            let z = Zipf::new(100_000, theta);
            let n = 50_000;
            (0..n).filter(|_| z.sample(&mut rng) < 100).count() as f64 / n as f64
        }
        let low = share(0.5, 4);
        let high = share(0.99, 4);
        assert!(high > low, "high {high} low {low}");
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 0.5);
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zeta_large_n_matches_exact_within_tolerance() {
        // Compare the integral approximation against exact summation.
        let exact: f64 = (1..=200_000u64).map(|i| 1.0 / (i as f64).powf(0.99)).sum();
        let approx = super::zeta(200_000, 0.99);
        assert!(
            (exact - approx).abs() / exact < 1e-3,
            "exact {exact} approx {approx}"
        );
    }
}
