//! YCSB D/E generator determinism, in the same style as
//! `shift_determinism.rs`. The contract of `YcsbPlan::stream(thread,
//! threads, ops)`:
//!
//! 1. **repeat identity** — the same `(plan, thread, threads, ops)`
//!    yields an identical op sequence every call;
//! 2. **statelessness** — streams share no hidden state: draining other
//!    streams (other threads, the other kind, other seeds) between two
//!    identical requests changes nothing;
//! 3. **golden output** — pinned FNV-1a digests so an accidental
//!    generator change cannot silently re-seed the ycsb benchmark rows.
//!    Unlike the shift generators, the zipfian sampler goes through
//!    `f64::powf` (libm), so the pins are scoped to the CI target
//!    (x86_64-linux); the platform-independent properties above run
//!    everywhere.

use workloads::{Op, YcsbKind, YcsbPlan};

/// Fold an op stream into an FNV-1a digest (op tag, then operands).
fn fnv1a<I: Iterator<Item = Op>>(ops: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for op in ops {
        match op {
            Op::Read(k) => {
                eat(1);
                eat(k);
            }
            Op::Insert(k, v) => {
                eat(2);
                eat(k);
                eat(v);
            }
            Op::Remove(k) => {
                eat(3);
                eat(k);
            }
            Op::Scan(k, n) => {
                eat(4);
                eat(k);
                eat(n as u64);
            }
        }
    }
    h
}

fn plan(kind: YcsbKind, seed: u64) -> YcsbPlan {
    let loaded: Vec<u64> = (1..=10_000u64).map(|i| i * 2).collect();
    let reserve: Vec<u64> = (1..=10_000u64).map(|i| i * 2 + 1).collect();
    YcsbPlan::new(loaded, reserve, kind, 0.99, seed)
}

#[test]
fn repeat_identity_for_both_kinds() {
    for kind in [YcsbKind::D, YcsbKind::E] {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let p = plan(kind, seed);
            for t in 0..3 {
                let a: Vec<Op> = p.stream(t, 3, 5_000).collect();
                let b: Vec<Op> = p.stream(t, 3, 5_000).collect();
                assert_eq!(a, b, "kind {kind:?} seed {seed} thread {t}");
            }
        }
    }
}

#[test]
fn streams_share_no_hidden_state() {
    for kind in [YcsbKind::D, YcsbKind::E] {
        let p = plan(kind, 42);
        let before = fnv1a(p.stream(1, 4, 5_000));
        // Drain unrelated streams: other threads, the other kind, other
        // seeds — none may perturb the request we repeat.
        for t in 0..4 {
            let _ = p.stream(t, 4, 2_000).count();
        }
        let other = plan(
            match kind {
                YcsbKind::D => YcsbKind::E,
                YcsbKind::E => YcsbKind::D,
            },
            42,
        );
        let _ = other.stream(1, 4, 2_000).count();
        let _ = plan(kind, 7).stream(1, 4, 2_000).count();
        let after = fnv1a(p.stream(1, 4, 5_000));
        assert_eq!(before, after, "kind {kind:?}");
    }
}

#[test]
fn distinct_seeds_and_threads_diverge() {
    for kind in [YcsbKind::D, YcsbKind::E] {
        let a = fnv1a(plan(kind, 1).stream(0, 4, 5_000));
        let b = fnv1a(plan(kind, 2).stream(0, 4, 5_000));
        assert_ne!(a, b, "seeds collide for {kind:?}");
        let c = fnv1a(plan(kind, 1).stream(1, 4, 5_000));
        assert_ne!(a, c, "threads collide for {kind:?}");
    }
}

/// Committed digests for the CI target. Regenerate by running this test
/// with `--nocapture` after an *intentional* generator change and
/// copying the printed values.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
#[test]
fn golden_digests_on_ci_target() {
    let got: Vec<u64> = [YcsbKind::D, YcsbKind::E]
        .into_iter()
        .flat_map(|kind| (0..2).map(move |t| fnv1a(plan(kind, 42).stream(t, 2, 5_000))))
        .collect();
    println!("ycsb digests: {got:#x?}");
    let want: [u64; 4] = [
        0x047c_abf8_4234_0045,
        0x4a56_f50a_bf24_9f9f,
        0x81db_b7cc_0acd_6662,
        0x24a6_24a8_988b_31a0,
    ];
    assert_eq!(
        got, want,
        "YCSB stream content changed — if intentional, re-pin"
    );
}
