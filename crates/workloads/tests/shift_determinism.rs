//! Shift-generator determinism: the reproducibility guard for the
//! retrain-shift experiments, in the same style as the datasets crate's
//! determinism suite. The contract of `ShiftPlan::stream(thread,
//! threads, ops)`:
//!
//! 1. **repeat identity** — the same `(plan, thread, threads, ops)`
//!    yields an identical op sequence every call;
//! 2. **statelessness** — streams share no hidden state: draining other
//!    streams (any kind, any seed) between two identical requests
//!    changes nothing;
//! 3. **golden output** — every kind is integer/bit-arithmetic only (no
//!    libm), so op sequences are pinned to committed FNV-1a digests; an
//!    accidental generator change cannot silently re-seed the
//!    `BENCH_retrain_shift` curves or the oracle suites built on exact
//!    stream replay.

use workloads::{Op, ShiftKind, ShiftPlan};

/// Fold an op stream into an FNV-1a digest (op tag, then operands).
fn fnv1a<I: Iterator<Item = Op>>(ops: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for op in ops {
        match op {
            Op::Read(k) => {
                eat(1);
                eat(k);
            }
            Op::Insert(k, v) => {
                eat(2);
                eat(k);
                eat(v);
            }
            Op::Remove(k) => {
                eat(3);
                eat(k);
            }
            Op::Scan(k, n) => {
                eat(4);
                eat(k);
                eat(n as u64);
            }
        }
    }
    h
}

#[test]
fn repeat_identity_for_every_kind() {
    for kind in ShiftKind::ALL {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let plan = ShiftPlan::new(kind, seed);
            for t in 0..3 {
                let a: Vec<Op> = plan.stream(t, 3, 10_000).collect();
                let b: Vec<Op> = plan.stream(t, 3, 10_000).collect();
                assert_eq!(a, b, "{} seed {seed} thread {t}", kind.label());
            }
        }
    }
}

#[test]
fn streams_are_stateless_across_interleaved_drains() {
    let baseline: Vec<(ShiftKind, Vec<Op>)> = ShiftKind::ALL
        .iter()
        .map(|&kind| (kind, ShiftPlan::new(kind, 77).stream(1, 2, 8_000).collect()))
        .collect();
    // Drain a pile of unrelated streams, then regenerate.
    for kind in ShiftKind::ALL {
        let _ = ShiftPlan::new(kind, 123_456).stream(0, 4, 3_000).count();
        let _ = ShiftPlan::new(kind, 9).initial_pairs();
    }
    for (kind, expected) in &baseline {
        let again: Vec<Op> = ShiftPlan::new(*kind, 77).stream(1, 2, 8_000).collect();
        assert_eq!(
            &again,
            expected,
            "{} drifted after interleaved drains",
            kind.label()
        );
    }
}

#[test]
fn threads_and_seeds_change_the_stream() {
    for kind in ShiftKind::ALL {
        let plan = ShiftPlan::new(kind, 5);
        let base = fnv1a(plan.stream(0, 4, 5_000));
        assert_ne!(
            base,
            fnv1a(plan.stream(1, 4, 5_000)),
            "{}: different threads must diverge",
            kind.label()
        );
        assert_ne!(
            base,
            fnv1a(ShiftPlan::new(kind, 6).stream(0, 4, 5_000)),
            "{}: different seeds must diverge",
            kind.label()
        );
    }
}

#[test]
fn streams_match_golden_digests() {
    // Computed once from the committed generator implementation
    // (integer arithmetic only — stable across hosts). A mismatch means
    // the generator changed and every recorded retrain-shift curve in
    // results/ is stale.
    const GOLDEN: &[(ShiftKind, usize, usize, u64, u64)] = &[
        // (kind, thread, threads, seed, digest) — 10_000 ops each.
        (ShiftKind::Append, 0, 2, 42, 0xf021_0e0c_b379_9063),
        (ShiftKind::Append, 1, 2, 42, 0x94ff_f0d5_85b3_6c0a),
        (ShiftKind::RollingWindow, 0, 2, 42, 0x1114_bc06_4a0b_c883),
        (ShiftKind::RollingWindow, 1, 2, 42, 0x2ec6_2344_0a39_4838),
        (ShiftKind::SuddenShift, 0, 2, 42, 0xe808_fc79_5cfb_934f),
        (ShiftKind::SuddenShift, 1, 2, 42, 0x617a_f26f_213c_3ec7),
    ];
    for &(kind, thread, threads, seed, want) in GOLDEN {
        let got = fnv1a(ShiftPlan::new(kind, seed).stream(thread, threads, 10_000));
        assert_eq!(
            got,
            want,
            "{} t{thread}/{threads} seed={seed}: digest {got:#018x} != golden {want:#018x}",
            kind.label()
        );
    }
}

#[test]
fn initial_pairs_match_golden_digest() {
    let pairs = ShiftPlan::new(ShiftKind::Append, 0).initial_pairs();
    let flat: Vec<Op> = pairs.iter().map(|&(k, v)| Op::Insert(k, v)).collect();
    let got = fnv1a(flat.into_iter());
    assert_eq!(got, 0xb27d_ed09_5bda_2e79, "preload drifted: {got:#018x}");
}
