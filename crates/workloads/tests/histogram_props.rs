//! Property-based tests for `LatencyHistogram`'s quantile edges — the
//! guarantees the bench reports (and the `obs` phase recorders built on
//! the same buckets) depend on:
//!
//! 1. **documented error** — for any sample set and any quantile, the
//!    reported value is the bucket lower edge of the exact sorted-sample
//!    quantile, i.e. within one bucket's relative width (1/32 ≈ 3.125%)
//!    below the true value and never above it;
//! 2. **edge cases** — q = 0.0 (reports the smallest sample's bucket),
//!    a single sample, values at 0 and `u64::MAX`, q >= 1.0 (the exact
//!    maximum);
//! 3. **bucket round-trip** — rebuilding from raw bucket counts
//!    (`from_bucket_counts`, the obs snapshot path) reports the same
//!    quantiles as the directly-recorded histogram.

use proptest::collection::vec;
use proptest::prelude::*;
use workloads::LatencyHistogram;

/// The exact quantile the histogram approximates: the ceil(n*q)-th
/// smallest sample (1-based), clamped to at least the 1st.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((n * q).ceil() as usize).max(1).min(sorted.len());
    sorted[rank - 1]
}

/// Mixed-magnitude samples: tiny exact-bucket values, mid-range, and
/// near-overflow, so every tier of the bucket layout gets exercised.
fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        vec(0u64..64, 1..max_len),
        vec(0u64..1_000_000, 1..max_len),
        vec(u64::MAX - 1_000_000..=u64::MAX, 1..max_len),
        vec(any::<u64>(), 1..max_len),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Invariant 1: the reported quantile equals the bucket floor of the
    /// exact quantile — at most 1/32 relatively below it, never above.
    #[test]
    fn quantile_is_bucket_floor_of_exact(
        s in samples(300),
        q in 0.0f64..1.0,
    ) {
        let mut s = s;
        let mut h = LatencyHistogram::new();
        for &v in &s {
            h.record(v);
        }
        s.sort_unstable();
        let exact = exact_quantile(&s, q);
        let got = h.quantile(q);
        prop_assert_eq!(
            got,
            LatencyHistogram::bucket_lower(LatencyHistogram::bucket_index(exact)),
            "q={} exact={}", q, exact
        );
        prop_assert!(got <= exact, "quantile may only round down");
        // Documented relative error: one bucket's width. For the exact
        // small-value tier the floor IS the value.
        let floor_gap = exact - got;
        prop_assert!(
            (floor_gap as f64) <= (exact as f64) / 32.0 + 1.0,
            "gap {} exceeds bucket width at {}", floor_gap, exact
        );
    }

    /// Invariant 2a: q = 0.0 reports the smallest sample's bucket floor,
    /// q >= 1.0 the exact maximum — for any sample set.
    #[test]
    fn extreme_quantiles(s in samples(200)) {
        let mut s = s;
        let mut h = LatencyHistogram::new();
        for &v in &s {
            h.record(v);
        }
        s.sort_unstable();
        prop_assert_eq!(
            h.quantile(0.0),
            LatencyHistogram::bucket_lower(LatencyHistogram::bucket_index(s[0]))
        );
        prop_assert_eq!(h.quantile(1.0), *s.last().unwrap(), "max is exact");
        prop_assert_eq!(h.quantile(2.0), *s.last().unwrap());
    }

    /// Invariant 2b: a single sample dominates every quantile.
    #[test]
    fn single_sample_everywhere(v in any::<u64>(), q in 0.0f64..1.0) {
        let mut h = LatencyHistogram::new();
        h.record(v);
        let floor = LatencyHistogram::bucket_lower(LatencyHistogram::bucket_index(v));
        prop_assert_eq!(h.quantile(q), floor);
        prop_assert_eq!(h.quantile(1.0), v);
        prop_assert_eq!(h.count(), 1);
    }

    /// Invariant 3: the bucket-count round-trip (how obs snapshots turn
    /// atomic bucket arrays back into histograms) preserves count and
    /// every quantile below 1.0; the max degrades to its bucket floor.
    #[test]
    fn bucket_counts_round_trip(s in samples(300), q in 0.0f64..1.0) {
        let mut h = LatencyHistogram::new();
        let mut counts = vec![0u64; LatencyHistogram::NUM_BUCKETS];
        for &v in &s {
            h.record(v);
            counts[LatencyHistogram::bucket_index(v)] += 1;
        }
        let rebuilt = LatencyHistogram::from_bucket_counts(&counts);
        prop_assert_eq!(rebuilt.count(), h.count());
        prop_assert_eq!(rebuilt.quantile(q), h.quantile(q), "q={}", q);
        prop_assert_eq!(
            rebuilt.max(),
            LatencyHistogram::bucket_lower(LatencyHistogram::bucket_index(h.max()))
        );
    }
}

#[test]
fn u64_max_lands_in_last_bucket_without_panic() {
    let mut h = LatencyHistogram::new();
    h.record(u64::MAX);
    h.record(0);
    assert_eq!(h.count(), 2);
    assert_eq!(h.quantile(1.0), u64::MAX);
    assert_eq!(h.quantile(0.25), 0);
    // The top tier's buckets sit below NUM_BUCKETS - 1 (the array keeps
    // headroom); what matters is in-bounds and a top-tier-sized floor.
    let idx = LatencyHistogram::bucket_index(u64::MAX);
    assert!(idx < LatencyHistogram::NUM_BUCKETS);
    assert!(
        LatencyHistogram::bucket_lower(idx) > u64::MAX / 2,
        "top-tier floor"
    );
}
