//! Deterministic concurrency testkit for the ALT-index workspace.
//!
//! Three pieces (see `TESTING.md` at the repository root):
//!
//! * [`chaos`] — seeded schedule-perturbing yield/delay points compiled
//!   into the optimistic hot paths of `alt-index`, `art`, and
//!   `baselines` behind their `chaos` cargo features. With the feature
//!   off the hooks are empty inlined functions and vanish from codegen.
//! * [`oracle`] — per-thread operation-history recording plus quiesce
//!   validation against a reference model, generic over
//!   [`index_api::ConcurrentIndex`].
//! * [`harness`] — a seeded multi-threaded workload driver that wires
//!   the two together: deterministic op scripts per thread, chaos
//!   perturbation while running, oracle checking at join.
//! * [`mutation`] — the runtime switch for deliberately-broken protocol
//!   variants (`chaos-mutate` feature in `alt-index`) used to prove the
//!   harness actually detects races.

#![warn(missing_docs)]

pub mod chaos;
pub mod harness;
pub mod mutation;
pub mod oracle;

/// SplitMix64: the deterministic stream every testkit component draws
/// from. Duplicated from `datasets::rng` so the testkit stays dependency-
/// free (it must be linkable from every crate in the workspace).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound` must be non-zero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
