//! Runtime switch for deliberately-broken protocol variants.
//!
//! Mutation self-testing proves the chaos harness has teeth: a known bug
//! is compiled in behind the `chaos-mutate` cargo feature (in
//! `alt-index`: `SlotArray::read` skips its version re-validation), this
//! flag turns it on at runtime, and `tests/mutation_selftest.rs` asserts
//! the oracle flags a violation within the CI seed matrix.
//!
//! The flag is process-global, which is why the mutation self-test lives
//! in its **own** integration-test binary: cargo runs each test binary
//! as a separate process, so enabling the mutation there cannot poison
//! tests running elsewhere in parallel.

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the compiled-in mutation on (no-op unless the crate under test
/// was built with its `chaos-mutate` feature).
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Turn the mutation back off.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether mutated code paths should misbehave right now. Instrumented
/// crates call this through their `chaos-mutate`-gated forwarders.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        assert!(!is_enabled());
        enable();
        assert!(is_enabled());
        disable();
        assert!(!is_enabled());
    }
}
