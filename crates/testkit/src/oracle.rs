//! History-recording oracle checker for [`ConcurrentIndex`] workloads.
//!
//! Threads execute their operations through a [`Recorder`], which logs
//! every call and its observed outcome. After the workload quiesces, one
//! of two checkers validates the per-thread histories plus the final
//! index state:
//!
//! * [`check_disjoint`] — **exact** checking when every key is touched by
//!   at most one thread. Each thread's history is replayed sequentially
//!   against a reference `BTreeMap`; every recorded outcome must match
//!   the model exactly, and the final index contents must equal the
//!   model's.
//! * [`check_lww`] — last-writer-wins checking for overlapping key sets,
//!   where the exact interleaving is unknown. Per key, the checker
//!   verifies that every observed value was actually written, that
//!   presence/absence transitions are consistent with *some*
//!   linearization (successful inserts and removes must alternate), and
//!   that the final state is reachable.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use index_api::{ConcurrentIndex, IndexError, Key, Value};

/// One operation issued against the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Get(Key),
    /// Insert (fails on duplicate).
    Insert(Key, Value),
    /// In-place update (fails on missing key).
    Update(Key, Value),
    /// Insert-or-update.
    Upsert(Key, Value),
    /// Remove, returning the prior value.
    Remove(Key),
    /// Bounded scan: up to `n` pairs starting at the given key. Unlike
    /// the point ops, a scan observes *many* keys — including, in
    /// concurrent runs, keys owned by other threads.
    Scan(Key, usize),
}

impl Op {
    /// The single key this operation addresses, or `None` for scans
    /// (which observe a key range rather than one key).
    pub fn key(&self) -> Option<Key> {
        match *self {
            Op::Get(k) | Op::Insert(k, _) | Op::Update(k, _) | Op::Upsert(k, _) | Op::Remove(k) => {
                Some(k)
            }
            Op::Scan(..) => None,
        }
    }
}

/// The observed result of an [`Op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Result of a `get`.
    Read(Option<Value>),
    /// Result of a `remove`.
    Removed(Option<Value>),
    /// Result of an `insert`/`update`/`upsert`.
    Mutated(Result<(), IndexError>),
    /// The pairs a `scan` returned.
    Scanned(Vec<(Key, Value)>),
}

/// One recorded call: the operation and what the index returned.
#[derive(Debug, Clone)]
pub struct Event {
    /// The operation issued.
    pub op: Op,
    /// The observed result.
    pub outcome: Outcome,
}

/// The ordered operation history of a single thread.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Events in program order.
    pub events: Vec<Event>,
}

/// Executes operations against an index while logging them into a
/// [`History`]. One recorder per worker thread.
pub struct Recorder<'a> {
    index: &'a dyn ConcurrentIndex,
    history: History,
}

impl<'a> Recorder<'a> {
    /// A recorder issuing operations against `index`.
    pub fn new(index: &'a dyn ConcurrentIndex) -> Self {
        Self {
            index,
            history: History::default(),
        }
    }

    /// Issue and record a `get`.
    pub fn get(&mut self, key: Key) -> Option<Value> {
        let r = self.index.get(key);
        self.history.events.push(Event {
            op: Op::Get(key),
            outcome: Outcome::Read(r),
        });
        r
    }

    /// Issue a batched `get` over `keys` and record one `Get` event per
    /// key. `get_batch` promises per-key linearizability (not an atomic
    /// snapshot), so recording the batch as consecutive scalar reads is
    /// exactly the guarantee the oracle should hold it to.
    pub fn get_batch(&mut self, keys: &[Key]) -> Vec<Option<Value>> {
        let mut out = vec![None; keys.len()];
        self.index.get_batch(keys, &mut out);
        for (&k, &r) in keys.iter().zip(out.iter()) {
            self.history.events.push(Event {
                op: Op::Get(k),
                outcome: Outcome::Read(r),
            });
        }
        out
    }

    /// Issue and record an `insert`.
    pub fn insert(&mut self, key: Key, value: Value) -> Result<(), IndexError> {
        let r = self.index.insert(key, value);
        self.history.events.push(Event {
            op: Op::Insert(key, value),
            outcome: Outcome::Mutated(r),
        });
        r
    }

    /// Issue and record an `update`.
    pub fn update(&mut self, key: Key, value: Value) -> Result<(), IndexError> {
        let r = self.index.update(key, value);
        self.history.events.push(Event {
            op: Op::Update(key, value),
            outcome: Outcome::Mutated(r),
        });
        r
    }

    /// Issue and record an `upsert`.
    pub fn upsert(&mut self, key: Key, value: Value) -> Result<(), IndexError> {
        let r = self.index.upsert(key, value);
        self.history.events.push(Event {
            op: Op::Upsert(key, value),
            outcome: Outcome::Mutated(r),
        });
        r
    }

    /// Issue and record a `remove`.
    pub fn remove(&mut self, key: Key) -> Option<Value> {
        let r = self.index.remove(key);
        self.history.events.push(Event {
            op: Op::Remove(key),
            outcome: Outcome::Removed(r),
        });
        r
    }

    /// Issue and record a bounded `scan` of up to `n` pairs from `lo`.
    pub fn scan(&mut self, lo: Key, n: usize) -> usize {
        let mut out = Vec::new();
        self.index.scan(lo, n, &mut out);
        let count = out.len();
        self.history.events.push(Event {
            op: Op::Scan(lo, n),
            outcome: Outcome::Scanned(out),
        });
        count
    }

    /// Finish recording and hand back the history.
    pub fn into_history(self) -> History {
        self.history
    }
}

/// A failed oracle check: every violation found, with thread/event
/// coordinates where applicable.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Human-readable violation descriptions.
    pub violations: Vec<String>,
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "oracle found {} violation(s):", self.violations.len())?;
        for (i, v) in self.violations.iter().enumerate().take(20) {
            writeln!(f, "  [{i}] {v}")?;
        }
        if self.violations.len() > 20 {
            writeln!(f, "  ... and {} more", self.violations.len() - 20)?;
        }
        Ok(())
    }
}

impl std::error::Error for OracleReport {}

/// Apply `op` to the reference model and return the outcome a correct
/// sequential index would produce.
fn model_apply(model: &mut BTreeMap<Key, Value>, op: Op) -> Outcome {
    match op {
        Op::Get(k) => Outcome::Read(model.get(&k).copied()),
        Op::Insert(k, v) => Outcome::Mutated(if k == index_api::RESERVED_KEY {
            Err(IndexError::ReservedKey)
        } else {
            match model.entry(k) {
                std::collections::btree_map::Entry::Occupied(_) => Err(IndexError::DuplicateKey),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                    Ok(())
                }
            }
        }),
        Op::Update(k, v) => Outcome::Mutated(match model.get_mut(&k) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(IndexError::KeyNotFound),
        }),
        Op::Upsert(k, v) => Outcome::Mutated(if k == index_api::RESERVED_KEY {
            Err(IndexError::ReservedKey)
        } else {
            model.insert(k, v);
            Ok(())
        }),
        Op::Remove(k) => Outcome::Removed(model.remove(&k)),
        // Scans observe keys owned by other threads, so even disjoint
        // replays cannot predict their outcome from one thread's model;
        // the checkers validate them separately.
        Op::Scan(..) => unreachable!("scan outcomes are validated out of band"),
    }
}

/// Exact expected state for a scan check: the reference model plus a
/// predicate selecting the keys the checker fully understands.
type OwnView<'a> = (&'a BTreeMap<Key, Value>, &'a dyn Fn(Key) -> bool);

/// Validate one concurrently-observed scan result against per-mode facts.
///
/// * `own_view` — exact expected pairs for keys this checker fully
///   understands (the scanning thread's own keys plus untouched initial
///   keys in disjoint mode; `None` in LWW mode where no exact view
///   exists).
/// * `written` — every value legitimately written to each key; any
///   scanned pair outside it is a torn read.
///
/// Checks: strict ordering, the `n` bound, value integrity for every
/// pair, and (when `own_view` is given) exact agreement plus
/// no-skipped-committed-keys over the covered span `[lo, hi]`.
#[allow(clippy::too_many_arguments)]
fn check_scan_event(
    ctx: &str,
    lo: Key,
    n: usize,
    pairs: &[(Key, Value)],
    own_view: Option<OwnView<'_>>,
    written: &BTreeMap<Key, BTreeSet<Value>>,
    violations: &mut Vec<String>,
) {
    if pairs.len() > n {
        violations.push(format!(
            "{ctx}: scan(lo={lo}, n={n}) returned {} pairs",
            pairs.len()
        ));
    }
    for w in pairs.windows(2) {
        if w[0].0 >= w[1].0 {
            violations.push(format!(
                "{ctx}: scan out of order or duplicate keys {} then {}",
                w[0].0, w[1].0
            ));
        }
    }
    for &(k, v) in pairs {
        if k < lo {
            violations.push(format!("{ctx}: scan(lo={lo}) returned key {k} below lo"));
        }
        match written.get(&k) {
            Some(vals) if vals.contains(&v) => {}
            Some(_) => violations.push(format!(
                "{ctx}: scan observed value {v} never written to key {k}"
            )),
            None => violations.push(format!(
                "{ctx}: scan observed key {k} that was never created"
            )),
        }
    }
    if let Some((model, is_mine)) = own_view {
        // The span a truncated scan is answerable for ends at its last
        // returned key; a short scan covers everything past lo.
        let hi = if pairs.len() == n {
            match pairs.last() {
                Some(&(k, _)) => k,
                None => return,
            }
        } else {
            Key::MAX
        };
        let scanned: BTreeMap<Key, Value> = pairs.iter().copied().collect();
        for (&k, &v) in model.range(lo..=hi) {
            if !is_mine(k) {
                continue;
            }
            match scanned.get(&k) {
                Some(&sv) if sv == v => {}
                Some(&sv) => violations.push(format!(
                    "{ctx}: scan returned value {sv} for key {k}, expected {v}"
                )),
                None => violations.push(format!(
                    "{ctx}: scan skipped committed key {k} inside its covered span \
                     [{lo}, {hi}]"
                )),
            }
        }
        for &(k, _) in pairs {
            if is_mine(k) && !model.contains_key(&k) {
                violations.push(format!(
                    "{ctx}: scan returned key {k}, which is not present in the \
                     sequential model at this point"
                ));
            }
        }
    }
}

/// Exact oracle for workloads where every key is touched by **at most one
/// thread**. `initial` is the bulk-loaded content of the index before the
/// workload ran.
///
/// Checks, in order:
/// 1. the disjointness precondition itself (a violation here means the
///    workload generator is broken, not the index);
/// 2. every recorded outcome against a sequential replay;
/// 3. the final index contents (point gets and a full range scan) against
///    the replayed model.
pub fn check_disjoint(
    index: &dyn ConcurrentIndex,
    initial: &[(Key, Value)],
    histories: &[History],
) -> Result<(), OracleReport> {
    let mut violations = Vec::new();

    // 1. Disjointness precondition. Scans are exempt: they observe many
    // keys but mutate none, so they cannot break ownership.
    let mut owner: BTreeMap<Key, usize> = BTreeMap::new();
    for (t, h) in histories.iter().enumerate() {
        for e in &h.events {
            let Some(k) = e.op.key() else { continue };
            match owner.get(&k) {
                Some(&o) if o != t => {
                    violations.push(format!(
                        "precondition: key {k} touched by thread {o} and thread {t} \
                         (use check_lww for overlapping workloads)"
                    ));
                }
                _ => {
                    owner.insert(k, t);
                }
            }
        }
    }
    if !violations.is_empty() {
        return Err(OracleReport { violations });
    }

    // Every value legitimately committed to each key (for validating the
    // foreign keys concurrent scans observe).
    let mut written: BTreeMap<Key, BTreeSet<Value>> = BTreeMap::new();
    for &(k, v) in initial {
        written.entry(k).or_default().insert(v);
    }
    for h in histories {
        for e in &h.events {
            if let (
                Op::Insert(k, v) | Op::Update(k, v) | Op::Upsert(k, v),
                Outcome::Mutated(Ok(())),
            ) = (e.op, &e.outcome)
            {
                written.entry(k).or_default().insert(v);
            }
        }
    }

    // 2. Sequential replay per thread. Keys are disjoint, so one shared
    // model replayed thread-by-thread is equivalent to per-thread models.
    // Scans cross thread boundaries: their own-key/untouched-key subset is
    // checked exactly against the model, foreign pairs for value
    // integrity only.
    let mut model: BTreeMap<Key, Value> = initial.iter().copied().collect();
    for (t, h) in histories.iter().enumerate() {
        for (i, e) in h.events.iter().enumerate() {
            if let (Op::Scan(lo, n), Outcome::Scanned(pairs)) = (e.op, &e.outcome) {
                // "Mine" = keys whose model state is trustworthy at this
                // replay point: this thread's keys (program order) and
                // initial keys no thread ever touched (immutable).
                let is_mine = |k: Key| owner.get(&k).map_or(written.contains_key(&k), |&o| o == t);
                check_scan_event(
                    &format!("thread {t} event {i}"),
                    lo,
                    n,
                    pairs,
                    Some((&model, &is_mine)),
                    &written,
                    &mut violations,
                );
                continue;
            }
            let expect = model_apply(&mut model, e.op);
            if e.outcome != expect {
                violations.push(format!(
                    "thread {t} event {i}: {:?} observed {:?}, sequential model expects {:?}",
                    e.op, e.outcome, expect
                ));
            }
        }
    }

    // 3. Final state: every key the model knows about, every key any
    // thread touched, and a full scan for phantoms.
    let mut keys_of_interest: BTreeSet<Key> = model.keys().copied().collect();
    keys_of_interest.extend(owner.keys().copied());
    for &k in &keys_of_interest {
        let got = index.get(k);
        let want = model.get(&k).copied();
        if got != want {
            violations.push(format!(
                "final state: get({k}) = {got:?}, model expects {want:?}"
            ));
        }
    }
    check_final_scan(index, &model, &mut violations);

    if violations.is_empty() {
        Ok(())
    } else {
        Err(OracleReport { violations })
    }
}

/// Per-key facts accumulated from overlapping histories.
#[derive(Default)]
struct KeyFacts {
    /// Values ever successfully written to this key (plus the initial
    /// value if bulk-loaded).
    written: BTreeSet<Value>,
    /// Successful inserts across all threads.
    ok_inserts: u64,
    /// Successful removes across all threads.
    ok_removes: u64,
    /// Successful upserts across all threads.
    ok_upserts: u64,
    /// Present in the initial bulk load.
    initially_present: bool,
}

/// Last-writer-wins oracle for workloads where threads share keys.
///
/// The exact interleaving is unknown, so this checks necessary conditions
/// every linearizable history satisfies:
///
/// * value integrity — every value observed by a `get`, a successful
///   `remove`, or the final state was actually written to that key;
/// * presence logic — a key observed present must have been initially
///   loaded or successfully inserted/upserted at some point;
/// * alternation — successful `insert`s flip a key absent→present and
///   successful `remove`s present→absent, so with `p0` initial presence,
///   `p0 + inserts - removes` must land in `{0, 1}` and (absent upserts,
///   which can also create the key) predicts final presence exactly;
/// * final-scan sanity — the quiesced range scan is sorted, duplicate
///   free, and agrees with point lookups.
pub fn check_lww(
    index: &dyn ConcurrentIndex,
    initial: &[(Key, Value)],
    histories: &[History],
) -> Result<(), OracleReport> {
    let mut violations = Vec::new();
    let mut facts: BTreeMap<Key, KeyFacts> = BTreeMap::new();
    for &(k, v) in initial {
        let f = facts.entry(k).or_default();
        f.initially_present = true;
        f.written.insert(v);
    }
    for h in histories {
        for e in &h.events {
            let Some(key) = e.op.key() else { continue };
            let f = facts.entry(key).or_default();
            match (e.op, &e.outcome) {
                (Op::Insert(_, v), Outcome::Mutated(Ok(()))) => {
                    f.ok_inserts += 1;
                    f.written.insert(v);
                }
                (Op::Update(_, v), Outcome::Mutated(Ok(()))) => {
                    f.written.insert(v);
                }
                (Op::Upsert(_, v), Outcome::Mutated(Ok(()))) => {
                    f.ok_upserts += 1;
                    f.written.insert(v);
                }
                (Op::Remove(_), Outcome::Removed(Some(_))) => {
                    f.ok_removes += 1;
                }
                _ => {}
            }
        }
    }

    // Observation checks need the full written-set, hence the second pass.
    // Every scanned pair is an observation too — concurrent scans are
    // where optimistic read protocols tear, so each one is held to value
    // integrity and ordering.
    let written: BTreeMap<Key, BTreeSet<Value>> = facts
        .iter()
        .filter(|(_, f)| !f.written.is_empty())
        .map(|(&k, f)| (k, f.written.clone()))
        .collect();
    for (t, h) in histories.iter().enumerate() {
        for (i, e) in h.events.iter().enumerate() {
            if let (Op::Scan(lo, n), Outcome::Scanned(pairs)) = (e.op, &e.outcome) {
                check_scan_event(
                    &format!("thread {t} event {i}"),
                    lo,
                    n,
                    pairs,
                    None,
                    &written,
                    &mut violations,
                );
                continue;
            }
            let Some(k) = e.op.key() else { continue };
            let f = &facts[&k];
            let observed = match e.outcome {
                Outcome::Read(Some(v)) | Outcome::Removed(Some(v)) => Some(v),
                _ => None,
            };
            if let Some(v) = observed {
                if !f.written.contains(&v) {
                    violations.push(format!(
                        "thread {t} event {i}: {:?} observed value {v} never written to key {k}",
                        e.op
                    ));
                }
                if !f.initially_present && f.ok_inserts == 0 && f.ok_upserts == 0 {
                    violations.push(format!(
                        "thread {t} event {i}: {:?} saw key {k} present, but it was never \
                         created",
                        e.op
                    ));
                }
            }
        }
    }

    // Alternation + final state per key.
    for (&k, f) in &facts {
        let p0 = u64::from(f.initially_present);
        let got = index.get(k);
        if let Some(v) = got {
            if !f.written.contains(&v) {
                violations.push(format!(
                    "final state: get({k}) = {v}, which was never written to that key"
                ));
            }
        }
        if f.ok_upserts == 0 {
            let balance = (p0 + f.ok_inserts) as i64 - f.ok_removes as i64;
            if !(0..=1).contains(&balance) {
                violations.push(format!(
                    "key {k}: {} successful inserts / {} removes with initial presence {p0} \
                     admit no linearization (balance {balance})",
                    f.ok_inserts, f.ok_removes
                ));
            } else {
                let want_present = balance == 1;
                if got.is_some() != want_present {
                    violations.push(format!(
                        "final state: key {k} present={}, but insert/remove accounting \
                         requires present={want_present}",
                        got.is_some()
                    ));
                }
            }
        } else if got.is_none()
            && f.ok_removes == 0
            && (f.initially_present || f.ok_inserts > 0 || f.ok_upserts > 0)
        {
            violations.push(format!(
                "final state: key {k} absent although it was created and never removed"
            ));
        }
    }

    // Final-scan sanity against point lookups.
    let final_model: BTreeMap<Key, Value> = facts
        .keys()
        .filter_map(|&k| index.get(k).map(|v| (k, v)))
        .collect();
    check_final_scan(index, &final_model, &mut violations);

    if violations.is_empty() {
        Ok(())
    } else {
        Err(OracleReport { violations })
    }
}

/// Validate the quiesced full-range scan: sorted, duplicate-free, and in
/// exact agreement with `model` over the model's key span.
fn check_final_scan(
    index: &dyn ConcurrentIndex,
    model: &BTreeMap<Key, Value>,
    violations: &mut Vec<String>,
) {
    let (lo, hi) = match (model.keys().next(), model.keys().next_back()) {
        (Some(&lo), Some(&hi)) => (lo, hi),
        _ => return,
    };
    let mut scanned = Vec::new();
    index.range(lo, hi, &mut scanned);
    for w in scanned.windows(2) {
        if w[0].0 >= w[1].0 {
            violations.push(format!(
                "final scan: out of order or duplicate keys {} then {}",
                w[0].0, w[1].0
            ));
        }
    }
    let model_pairs: Vec<(Key, Value)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    if scanned != model_pairs {
        let scanned_keys: BTreeSet<Key> = scanned.iter().map(|&(k, _)| k).collect();
        let model_keys: BTreeSet<Key> = model.keys().copied().collect();
        for &k in model_keys.difference(&scanned_keys) {
            violations.push(format!("final scan: committed key {k} missing from scan"));
        }
        for &k in scanned_keys.difference(&model_keys) {
            violations.push(format!(
                "final scan: phantom key {k} not in point-get state"
            ));
        }
        if scanned_keys == model_keys {
            for (s, m) in scanned.iter().zip(model_pairs.iter()) {
                if s != m {
                    violations.push(format!(
                        "final scan: key {} scanned value {} but point get returns {}",
                        s.0, s.1, m.1
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct RefIndex(Mutex<BTreeMap<Key, Value>>);

    impl RefIndex {
        fn new(initial: &[(Key, Value)]) -> Self {
            Self(Mutex::new(initial.iter().copied().collect()))
        }
    }

    impl ConcurrentIndex for RefIndex {
        fn get(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn insert(&self, key: Key, value: Value) -> index_api::Result<()> {
            match model_apply(&mut self.0.lock().unwrap(), Op::Insert(key, value)) {
                Outcome::Mutated(r) => r,
                _ => unreachable!(),
            }
        }
        fn update(&self, key: Key, value: Value) -> index_api::Result<()> {
            match model_apply(&mut self.0.lock().unwrap(), Op::Update(key, value)) {
                Outcome::Mutated(r) => r,
                _ => unreachable!(),
            }
        }
        fn remove(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().remove(&key)
        }
        fn range(&self, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) -> usize {
            let m = self.0.lock().unwrap();
            let before = out.len();
            out.extend(m.range(lo..=hi).map(|(&k, &v)| (k, v)));
            out.len() - before
        }
        fn memory_usage(&self) -> usize {
            0
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
        fn name(&self) -> &'static str {
            "ref"
        }
    }

    #[test]
    fn disjoint_accepts_correct_sequential_run() {
        let idx = RefIndex::new(&[(10, 1)]);
        let mut rec = Recorder::new(&idx);
        assert_eq!(rec.get(10), Some(1));
        rec.insert(11, 2).unwrap();
        rec.update(11, 3).unwrap();
        assert_eq!(rec.remove(10), Some(1));
        let h = rec.into_history();
        check_disjoint(&idx, &[(10, 1)], &[h]).unwrap();
    }

    #[test]
    fn disjoint_flags_wrong_outcome() {
        let idx = RefIndex::new(&[]);
        let mut rec = Recorder::new(&idx);
        rec.insert(5, 50).unwrap();
        let mut h = rec.into_history();
        // Forge a lost-read: pretend the thread observed None after its
        // own insert.
        h.events.push(Event {
            op: Op::Get(5),
            outcome: Outcome::Read(None),
        });
        let err = check_disjoint(&idx, &[], &[h]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| v.contains("event 1")),
            "{err}"
        );
    }

    #[test]
    fn disjoint_flags_overlapping_threads() {
        let idx = RefIndex::new(&[]);
        let h = |op, outcome| History {
            events: vec![Event { op, outcome }],
        };
        let a = h(Op::Get(7), Outcome::Read(None));
        let b = h(Op::Get(7), Outcome::Read(None));
        let err = check_disjoint(&idx, &[], &[a, b]).unwrap_err();
        assert!(err.violations[0].contains("precondition"), "{err}");
    }

    #[test]
    fn disjoint_flags_final_state_divergence() {
        let idx = RefIndex::new(&[]);
        let mut rec = Recorder::new(&idx);
        rec.insert(9, 90).unwrap();
        let h = rec.into_history();
        // Sabotage the index after the fact: the final state no longer
        // matches the replay.
        idx.0.lock().unwrap().remove(&9);
        let err = check_disjoint(&idx, &[], &[h]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| v.contains("final state")),
            "{err}"
        );
    }

    #[test]
    fn lww_accepts_overlapping_run() {
        let idx = RefIndex::new(&[(1, 10)]);
        let mut a = Recorder::new(&idx);
        let mut b = Recorder::new(&idx);
        a.upsert(1, 11).unwrap();
        b.upsert(1, 12).unwrap();
        a.get(1);
        let _ = b.insert(2, 20);
        let _ = a.insert(2, 21);
        let (ha, hb) = (a.into_history(), b.into_history());
        check_lww(&idx, &[(1, 10)], &[ha, hb]).unwrap();
    }

    #[test]
    fn lww_flags_value_from_nowhere() {
        let idx = RefIndex::new(&[]);
        let h = History {
            events: vec![Event {
                op: Op::Get(3),
                outcome: Outcome::Read(Some(999)),
            }],
        };
        let err = check_lww(&idx, &[], &[h]).unwrap_err();
        assert!(
            err.violations.iter().any(|v| v.contains("never written")),
            "{err}"
        );
    }

    #[test]
    fn lww_flags_impossible_insert_remove_balance() {
        let idx = RefIndex::new(&[]);
        let h = History {
            events: vec![
                Event {
                    op: Op::Remove(4),
                    outcome: Outcome::Removed(Some(40)),
                },
                Event {
                    op: Op::Remove(4),
                    outcome: Outcome::Removed(Some(40)),
                },
            ],
        };
        let err = check_lww(&idx, &[(4, 40)], &[h]).unwrap_err();
        assert!(
            err.violations
                .iter()
                .any(|v| v.contains("no linearization")),
            "{err}"
        );
    }

    #[test]
    fn lww_flags_lost_key() {
        let idx = RefIndex::new(&[]);
        let mut rec = Recorder::new(&idx);
        rec.insert(6, 60).unwrap();
        let h = rec.into_history();
        idx.0.lock().unwrap().remove(&6); // simulate a lost insert
        let err = check_lww(&idx, &[], &[h]).unwrap_err();
        assert!(!err.violations.is_empty(), "{err}");
    }
}
