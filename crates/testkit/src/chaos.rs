//! Seeded schedule-perturbing chaos points.
//!
//! Instrumented crates call [`point`] at protocol-critical sites (slot
//! claim, version validate, lock acquire, directory swap, …). When a
//! chaos schedule is installed, each call consults a **per-thread**
//! deterministic SplitMix64 stream and, with configured probability,
//! perturbs the schedule: a bounded spin, a `thread::yield_now`, or a
//! short sleep. With no schedule installed the call is two relaxed
//! atomic loads and returns.
//!
//! Determinism model: the perturbation *decisions* are a pure function
//! of `(seed, thread-registration-index, call-count)`. The OS still
//! chooses the actual interleaving, but replaying a seed re-applies the
//! same delay pattern, which reliably re-widens the same race windows.
//! Crucially the decision path shares no mutable state between threads —
//! cross-thread synchronization here would order the very accesses we
//! are trying to race.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::SplitMix64;

/// Global schedule generation. Even = disabled, odd = enabled. Bumped
/// twice per install so threads can detect schedule changes and re-seed
/// their local stream.
static GENERATION: AtomicU32 = AtomicU32::new(0);
/// Seed of the currently-installed schedule.
static SEED: AtomicU64 = AtomicU64::new(0);
/// Perturbation probability in parts per 1024.
static INTENSITY: AtomicU32 = AtomicU32::new(0);
/// Registration counter handing out stable per-thread stream indexes.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
/// Monotonic count of chaos-point hits under any schedule (coarse,
/// relaxed — used only to assert instrumentation is actually reached;
/// compare before/after deltas).
static HITS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: Cell<LocalChaos> = const {
        Cell::new(LocalChaos { generation: 0, rng_state: 0 })
    };
}

#[derive(Clone, Copy)]
struct LocalChaos {
    generation: u32,
    rng_state: u64,
}

/// A chaos schedule installed for the duration of this guard. Dropping
/// it disables chaos points again.
///
/// Schedules are process-global; tests that install one should hold it
/// across the whole concurrent section. Installing a second schedule
/// while one is live simply supersedes it (last writer wins), which is
/// why chaos suites run each seed sequentially.
#[must_use = "chaos is disabled again when the schedule guard drops"]
pub struct ScheduleGuard {
    _priv: (),
}

impl Drop for ScheduleGuard {
    fn drop(&mut self) {
        INTENSITY.store(0, Ordering::Relaxed);
        // Back to even: disabled.
        GENERATION.fetch_add(1, Ordering::Release);
    }
}

/// Install a deterministic perturbation schedule.
///
/// * `seed` — master seed; each thread derives stream `mix(seed, index)`.
/// * `intensity_per_1024` — probability (out of 1024) that any given
///   chaos point perturbs the schedule. Typical values 64–512.
pub fn install_schedule(seed: u64, intensity_per_1024: u32) -> ScheduleGuard {
    SEED.store(seed, Ordering::Relaxed);
    INTENSITY.store(intensity_per_1024.min(1024), Ordering::Relaxed);
    // To odd: enabled. Two installs in a row still change the generation,
    // so threads re-derive their streams per schedule.
    let g = GENERATION.fetch_add(1, Ordering::Release);
    if !g.is_multiple_of(2) {
        // Previous guard still alive (superseded): bump once more so the
        // new generation is odd.
        GENERATION.fetch_add(1, Ordering::Release);
    }
    ScheduleGuard { _priv: () }
}

/// Monotonic count of chaos-point hits across all schedules ever
/// installed in this process. Measure a before/after delta to assert
/// instrumented paths are actually reached.
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// The chaos hook. Instrumented crates call this (through their cfg'd
/// forwarder) at protocol-critical sites. `site` names the call site for
/// diagnostics; it also salts the per-call decision so distinct sites
/// perturb independently.
#[inline]
pub fn point(site: &'static str) {
    let generation = GENERATION.load(Ordering::Acquire);
    if generation.is_multiple_of(2) {
        return; // No schedule installed.
    }
    perturb(site, generation);
}

#[cold]
fn perturb(site: &'static str, generation: u32) {
    let mut local = LOCAL.with(Cell::get);
    if local.generation != generation {
        // First hit under this schedule: derive this thread's stream from
        // (seed, registration index). Registration order is itself
        // schedule-dependent, so harnesses register threads in spawn
        // order by hitting a chaos point before the workload barrier.
        let idx = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) as u64;
        let seed = SEED.load(Ordering::Relaxed);
        let mut mixer = SplitMix64::new(seed ^ idx.wrapping_mul(0xA076_1D64_78BD_642F));
        local = LocalChaos {
            generation,
            rng_state: mixer.next_u64(),
        };
    }
    let mut rng = SplitMix64::new(local.rng_state ^ site_hash(site));
    let roll = rng.next_below(1024) as u32;
    // Advance the thread-local stream regardless of the outcome so the
    // decision sequence stays a function of the call count alone.
    let mut stream = SplitMix64::new(local.rng_state);
    local.rng_state = stream.next_u64();
    LOCAL.with(|c| c.set(local));
    HITS.fetch_add(1, Ordering::Relaxed);

    if roll >= INTENSITY.load(Ordering::Relaxed) {
        return;
    }
    match rng.next_below(8) {
        // Most perturbations are bounded spins: they shift timing inside
        // the current quantum, which is what exposes optimistic-protocol
        // windows (read/validate, claim/publish).
        0..=4 => {
            let spins = 1 + rng.next_below(256);
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
        // Yields hand the core to a contending thread.
        5 | 6 => std::thread::yield_now(),
        // Rare short sleeps force a reschedule even on idle machines.
        _ => std::thread::sleep(Duration::from_micros(rng.next_below(40) + 10)),
    }
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a, compile-time-stable across runs (no RandomState).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_points_are_cheap_and_silent() {
        let before = hits();
        for _ in 0..1000 {
            point("test.disabled");
        }
        // No schedule in this test -> the counter must not move because
        // of *our* calls (other tests may run in parallel, so only check
        // when nothing else installed a schedule).
        if GENERATION.load(Ordering::Acquire).is_multiple_of(2) {
            assert_eq!(hits(), before);
        }
    }

    #[test]
    fn installed_schedule_counts_hits() {
        let before = hits();
        let guard = install_schedule(42, 512);
        for _ in 0..100 {
            point("test.enabled");
        }
        assert!(hits() - before >= 100, "chaos points should register hits");
        drop(guard);
    }

    #[test]
    fn site_hash_distinguishes_sites() {
        assert_ne!(site_hash("slots.read"), site_hash("slots.claim"));
    }
}
