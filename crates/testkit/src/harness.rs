//! Seeded multi-threaded workload driver wiring chaos + oracle together.
//!
//! A [`Scenario`] deterministically derives, from one seed: the initial
//! bulk-load contents, every thread's operation script, and the chaos
//! perturbation schedule. Running the same scenario twice issues exactly
//! the same operations; with the `chaos` features enabled in the crates
//! under test, the same delay pattern is re-applied too.

use std::sync::{Barrier, Mutex, PoisonError};

use index_api::{ConcurrentIndex, Key, Value};

use crate::oracle::{self, History, OracleReport, Recorder};
use crate::{chaos, SplitMix64};

/// How threads share the key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Each thread owns a disjoint key slice — checked with the exact
    /// sequential-replay oracle.
    Disjoint,
    /// All threads draw from one shared pool — checked with the
    /// last-writer-wins oracle.
    Shared,
}

/// A deterministic concurrent workload description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Master seed: scripts, preload, and chaos schedule derive from it.
    pub seed: u64,
    /// Worker thread count.
    pub threads: usize,
    /// Operations issued per thread.
    pub ops_per_thread: usize,
    /// Keys per thread (disjoint) or shared-pool size (shared).
    pub keys_per_thread: usize,
    /// Key-space sharing mode, which also selects the oracle.
    pub partition: Partition,
    /// Chaos perturbation probability out of 1024; `0` skips installing
    /// a schedule (points stay inert).
    pub chaos_intensity: u32,
    /// Batched-read width: `>= 2` coalesces runs of consecutive `Get`
    /// ops into `get_batch` calls of at most this many keys (flushing
    /// early at any mutation, so event order is preserved); `0` or `1`
    /// issues scalar `get`s. The oracle treats the batch as consecutive
    /// per-key reads either way.
    pub batch_width: usize,
}

impl Scenario {
    /// A default-shaped scenario for `seed`: 8 threads, disjoint keys,
    /// moderate chaos.
    pub fn disjoint(seed: u64) -> Self {
        Self {
            seed,
            threads: 8,
            ops_per_thread: 800,
            keys_per_thread: 192,
            partition: Partition::Disjoint,
            chaos_intensity: 256,
            batch_width: 0,
        }
    }

    /// A default-shaped shared-key scenario for `seed`.
    pub fn shared(seed: u64) -> Self {
        Self {
            partition: Partition::Shared,
            ..Self::disjoint(seed)
        }
    }

    /// Total key universe: `1 ..= threads * keys_per_thread`, offset past
    /// the reserved key 0.
    fn universe(&self) -> u64 {
        (self.threads * self.keys_per_thread) as u64
    }

    /// The thread-`t` key for local index `i` under the partition mode.
    fn key_for(&self, t: usize, i: u64) -> Key {
        match self.partition {
            Partition::Disjoint => 1 + (t * self.keys_per_thread) as u64 + i,
            Partition::Shared => 1 + i,
        }
    }

    /// Deterministic initial contents. Bulk-load (or pre-insert) exactly
    /// these pairs before calling [`Scenario::run`]; the oracle is told
    /// the same set. Roughly a third of the universe is preloaded.
    pub fn initial_pairs(&self) -> Vec<(Key, Value)> {
        let mut rng = SplitMix64::new(self.seed ^ 0x1A17_5EED_0001);
        let mut out = Vec::new();
        for k in 1..=self.universe() {
            if rng.next_below(3) == 0 {
                out.push((k, k.wrapping_mul(0x9E37) ^ self.seed));
            }
        }
        out
    }

    /// Run the workload against `index` (already loaded with
    /// [`Scenario::initial_pairs`]) and oracle-check the result.
    pub fn run(&self, index: &dyn ConcurrentIndex) -> Result<(), OracleReport> {
        let initial = self.initial_pairs();
        let scripts: Vec<Vec<oracle::Op>> = (0..self.threads).map(|t| self.script_for(t)).collect();

        // The chaos schedule is process-global: serialize chaos scenarios
        // so parallel test functions don't supersede each other's seeds.
        static SCHEDULE_OWNER: Mutex<()> = Mutex::new(());
        let _serial = (self.chaos_intensity > 0).then(|| {
            SCHEDULE_OWNER
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
        });
        let _guard = (self.chaos_intensity > 0)
            .then(|| chaos::install_schedule(self.seed, self.chaos_intensity));

        let barrier = Barrier::new(self.threads);
        let histories: Vec<History> = std::thread::scope(|s| {
            let handles: Vec<_> = scripts
                .iter()
                .map(|script| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        let mut rec = Recorder::new(index);
                        barrier.wait();
                        if self.batch_width >= 2 {
                            // Coalesce runs of consecutive gets into
                            // get_batch calls; any mutation flushes first
                            // so the recorded event order matches the
                            // issue order.
                            let mut buf: Vec<Key> = Vec::with_capacity(self.batch_width);
                            for &op in script {
                                if let oracle::Op::Get(k) = op {
                                    buf.push(k);
                                    if buf.len() == self.batch_width {
                                        rec.get_batch(&buf);
                                        buf.clear();
                                    }
                                    continue;
                                }
                                if !buf.is_empty() {
                                    rec.get_batch(&buf);
                                    buf.clear();
                                }
                                exec(&mut rec, op);
                            }
                            if !buf.is_empty() {
                                rec.get_batch(&buf);
                            }
                        } else {
                            for &op in script {
                                exec(&mut rec, op);
                            }
                        }
                        rec.into_history()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        match self.partition {
            Partition::Disjoint => oracle::check_disjoint(index, &initial, &histories),
            Partition::Shared => oracle::check_lww(index, &initial, &histories),
        }
    }

    /// Thread `t`'s deterministic op script. Mix: ~30% get, ~5% scan,
    /// ~20% insert, ~15% update, ~15% upsert, ~15% remove.
    fn script_for(&self, t: usize) -> Vec<oracle::Op> {
        let mut rng = SplitMix64::new(
            self.seed ^ (t as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ 0x5C21_9700,
        );
        let keys = match self.partition {
            Partition::Disjoint => self.keys_per_thread as u64,
            Partition::Shared => self.universe(),
        };
        (0..self.ops_per_thread)
            .map(|_| {
                let k = self.key_for(t, rng.next_below(keys));
                let v = rng.next_u64() | 1; // never 0, easier to eyeball
                match rng.next_below(100) {
                    0..=29 => oracle::Op::Get(k),
                    // Scans sweep many slots mid-churn, so they observe
                    // torn optimistic reads point gets rarely line up
                    // with.
                    30..=34 => oracle::Op::Scan(k, 1 + rng.next_below(24) as usize),
                    35..=54 => oracle::Op::Insert(k, v),
                    55..=69 => oracle::Op::Update(k, v),
                    70..=84 => oracle::Op::Upsert(k, v),
                    _ => oracle::Op::Remove(k),
                }
            })
            .collect()
    }
}

fn exec(rec: &mut Recorder<'_>, op: oracle::Op) {
    match op {
        oracle::Op::Get(k) => {
            rec.get(k);
        }
        oracle::Op::Insert(k, v) => {
            let _ = rec.insert(k, v);
        }
        oracle::Op::Update(k, v) => {
            let _ = rec.update(k, v);
        }
        oracle::Op::Upsert(k, v) => {
            let _ = rec.upsert(k, v);
        }
        oracle::Op::Remove(k) => {
            rec.remove(k);
        }
        oracle::Op::Scan(lo, n) => {
            rec.scan(lo, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    struct LockedMap(Mutex<BTreeMap<Key, Value>>);

    impl ConcurrentIndex for LockedMap {
        fn get(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn insert(&self, key: Key, value: Value) -> index_api::Result<()> {
            let mut m = self.0.lock().unwrap();
            if key == index_api::RESERVED_KEY {
                return Err(index_api::IndexError::ReservedKey);
            }
            if m.contains_key(&key) {
                return Err(index_api::IndexError::DuplicateKey);
            }
            m.insert(key, value);
            Ok(())
        }
        fn update(&self, key: Key, value: Value) -> index_api::Result<()> {
            match self.0.lock().unwrap().get_mut(&key) {
                Some(v) => {
                    *v = value;
                    Ok(())
                }
                None => Err(index_api::IndexError::KeyNotFound),
            }
        }
        fn remove(&self, key: Key) -> Option<Value> {
            self.0.lock().unwrap().remove(&key)
        }
        fn range(&self, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) -> usize {
            let m = self.0.lock().unwrap();
            let before = out.len();
            out.extend(m.range(lo..=hi).map(|(&k, &v)| (k, v)));
            out.len() - before
        }
        fn memory_usage(&self) -> usize {
            0
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
        fn name(&self) -> &'static str {
            "locked-map"
        }
    }

    #[test]
    fn scripts_are_deterministic() {
        let s = Scenario::disjoint(7);
        assert_eq!(s.script_for(3), s.script_for(3));
        assert_ne!(s.script_for(0), s.script_for(1));
        assert_eq!(s.initial_pairs(), s.initial_pairs());
    }

    #[test]
    fn disjoint_scenario_passes_on_correct_index() {
        let s = Scenario::disjoint(11);
        let idx = LockedMap(Mutex::new(s.initial_pairs().into_iter().collect()));
        s.run(&idx).unwrap();
    }

    #[test]
    fn shared_scenario_passes_on_correct_index() {
        let s = Scenario::shared(13);
        let idx = LockedMap(Mutex::new(s.initial_pairs().into_iter().collect()));
        s.run(&idx).unwrap();
    }

    #[test]
    fn batched_scenario_passes_on_correct_index() {
        let mut s = Scenario::disjoint(17);
        s.batch_width = 8;
        let idx = LockedMap(Mutex::new(s.initial_pairs().into_iter().collect()));
        s.run(&idx).unwrap();
        let mut s = Scenario::shared(19);
        s.batch_width = 8;
        let idx = LockedMap(Mutex::new(s.initial_pairs().into_iter().collect()));
        s.run(&idx).unwrap();
    }
}
