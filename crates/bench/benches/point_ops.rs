//! Criterion microbench: single-threaded point-op latency for every
//! index (the per-op cost underlying Figs 7-9).

use bench::IndexKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::{generate_pairs, Dataset};
use std::hint::black_box;

fn bench_get(c: &mut Criterion) {
    let n = 500_000;
    let pairs = generate_pairs(Dataset::Osm, n, 42);
    let probes: Vec<u64> = pairs.iter().step_by(11).map(|p| p.0).collect();
    let mut group = c.benchmark_group("get_osm");
    group.throughput(Throughput::Elements(probes.len() as u64));
    for kind in IndexKind::COMPETITORS {
        let idx = kind.build(&pairs);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &probes,
            |b, probes| {
                b.iter(|| {
                    let mut found = 0usize;
                    for &k in probes {
                        found += idx.get(black_box(k)).is_some() as usize;
                    }
                    black_box(found)
                })
            },
        );
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let n = 500_000;
    let pairs = generate_pairs(Dataset::Osm, n, 42);
    let bulk: Vec<(u64, u64)> = pairs.iter().step_by(2).copied().collect();
    // Shuffled reserve (sorted-order inserts are an unrepresentative
    // worst case for gapped arrays).
    let mut reserve: Vec<u64> = pairs.iter().skip(1).step_by(2).map(|p| p.0).collect();
    let mut s = 0x12345u64;
    for i in (1..reserve.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        reserve.swap(i, (s >> 33) as usize % (i + 1));
    }
    let batch = 50_000.min(reserve.len());
    let mut group = c.benchmark_group("insert_osm");
    group.throughput(Throughput::Elements(batch as u64));
    group.sample_size(10);
    for kind in IndexKind::COMPETITORS {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &(), |b, _| {
            b.iter_with_setup(
                || kind.build(&bulk),
                |idx| {
                    for &k in &reserve[..batch] {
                        let _ = idx.insert(black_box(k), k);
                    }
                    idx
                },
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_get, bench_insert
}
criterion_main!(benches);
