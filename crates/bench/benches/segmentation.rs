//! Criterion microbench: segmentation algorithm cost (the measurable side
//! of Fig 4) — GPL's single-pass O(n) against ShrinkingCone and LPA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datasets::{generate, Dataset};
use learned::{gpl_segment, lpa_segment, shrinking_cone_segment};

fn bench_segmentation(c: &mut Criterion) {
    let n = 200_000;
    let eps = 200.0;
    let mut group = c.benchmark_group("segmentation");
    group.throughput(Throughput::Elements(n as u64));
    for ds in [Dataset::Libio, Dataset::Osm, Dataset::Longlat] {
        let keys = generate(ds, n, 42);
        group.bench_with_input(BenchmarkId::new("gpl", ds.name()), &keys, |b, keys| {
            b.iter(|| gpl_segment(keys, eps))
        });
        group.bench_with_input(
            BenchmarkId::new("shrinking_cone", ds.name()),
            &keys,
            |b, keys| b.iter(|| shrinking_cone_segment(keys, eps)),
        );
        group.bench_with_input(BenchmarkId::new("lpa", ds.name()), &keys, |b, keys| {
            b.iter(|| lpa_segment(keys, eps, 32))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_segmentation
}
criterion_main!(benches);
