//! Criterion microbench: ART substrate costs — root lookups versus
//! fast-pointer jumps (the per-op side of Fig 10(a)) and raw
//! insert/remove cycling.

use alt_index::{AltConfig, AltIndex};
use art::Art;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datasets::{generate_pairs, Dataset};
use std::hint::black_box;

fn bench_art_root_vs_jump(c: &mut Criterion) {
    // Build an ALT-index whose ART layer carries plenty of conflicts,
    // then compare full lookups that hit the ART layer.
    let pairs = generate_pairs(Dataset::Longlat, 400_000, 7);
    let with_fp = AltIndex::bulk_load_default(&pairs);
    let without_fp = AltIndex::bulk_load_with(
        &pairs,
        AltConfig {
            fast_pointers: false,
            ..Default::default()
        },
    );
    let art_keys: Vec<u64> = pairs
        .iter()
        .map(|p| p.0)
        .filter(|&k| with_fp.probe_art_hops(k).is_some())
        .take(20_000)
        .collect();
    if art_keys.is_empty() {
        eprintln!("no ART residents; skipping jump bench");
        return;
    }
    let mut group = c.benchmark_group("alt_art_resident_get");
    group.throughput(Throughput::Elements(art_keys.len() as u64));
    group.bench_function("with_fast_pointers", |b| {
        b.iter(|| {
            let mut f = 0usize;
            for &k in &art_keys {
                f += with_fp.get(black_box(k)).is_some() as usize;
            }
            black_box(f)
        })
    });
    group.bench_function("without_fast_pointers", |b| {
        b.iter(|| {
            let mut f = 0usize;
            for &k in &art_keys {
                f += without_fp.get(black_box(k)).is_some() as usize;
            }
            black_box(f)
        })
    });
    group.finish();
}

fn bench_art_raw(c: &mut Criterion) {
    let pairs = generate_pairs(Dataset::Osm, 200_000, 9);
    let art = Art::new();
    for &(k, v) in &pairs {
        art.insert(k, v);
    }
    let probes: Vec<u64> = pairs.iter().step_by(7).map(|p| p.0).collect();
    let mut group = c.benchmark_group("art_raw");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("get", |b| {
        b.iter(|| {
            let mut f = 0usize;
            for &k in &probes {
                f += art.get(black_box(k)).is_some() as usize;
            }
            black_box(f)
        })
    });
    group.bench_function("insert_remove_cycle", |b| {
        b.iter(|| {
            for &k in probes.iter().take(10_000) {
                art.insert(black_box(k ^ 1), 1);
            }
            for &k in probes.iter().take(10_000) {
                art.remove(black_box(k ^ 1));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_art_root_vs_jump, bench_art_raw
}
criterion_main!(benches);
