//! Experiment setup: dataset generation and the bulk-load / reserve split
//! (§IV-A2: "we bulkload 50% of the datasets to initialize the indexes").

use datasets::{generate_pairs, Dataset};
use workloads::{Mix, WorkloadPlan};

/// A prepared experiment input: the bulk-load half and the insert
/// reserve.
pub struct Setup {
    /// The dataset.
    pub dataset: Dataset,
    /// Sorted unique pairs to bulk-load.
    pub bulk: Vec<(u64, u64)>,
    /// Keys reserved for runtime insertion.
    pub reserve: Vec<u64>,
}

impl Setup {
    /// Generate `keys` pairs and split them `bulk_ratio : rest` by
    /// interleaving (every k-th key reserved), which keeps the reserved
    /// keys uniformly distributed over the key space as the paper's
    /// insert workload requires.
    pub fn new(dataset: Dataset, keys: usize, bulk_ratio: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&bulk_ratio));
        let pairs = Self::pairs(dataset, keys, seed);
        let mut bulk = Vec::with_capacity((keys as f64 * bulk_ratio) as usize + 1);
        let mut reserve = Vec::with_capacity(keys - bulk.capacity() + 1);
        // Interleaved split: take ratio-fraction into bulk round-robin.
        let mut acc = 0.0f64;
        for &(k, v) in &pairs {
            acc += bulk_ratio;
            if acc >= 1.0 {
                acc -= 1.0;
                bulk.push((k, v));
            } else {
                reserve.push(k);
            }
        }
        Self {
            dataset,
            bulk,
            reserve,
        }
    }

    /// The standard 50% bulk-load split.
    pub fn half(dataset: Dataset, keys: usize, seed: u64) -> Self {
        Self::new(dataset, keys, 0.5, seed)
    }

    /// Source pairs for a dataset: a real SOSD file under
    /// `$ALT_SOSD_DIR` when present (see [`datasets::sosd`]), otherwise
    /// the synthetic generator.
    fn pairs(dataset: Dataset, keys: usize, seed: u64) -> Vec<(u64, u64)> {
        match datasets::maybe_load(dataset, keys) {
            Some(pairs) => pairs,
            None => generate_pairs(dataset, keys, seed),
        }
    }

    /// The loaded key array (for read workloads).
    pub fn loaded_keys(&self) -> Vec<u64> {
        self.bulk.iter().map(|p| p.0).collect()
    }

    /// Build a workload plan over this setup.
    pub fn plan(&self, mix: Mix, theta: f64, seed: u64) -> WorkloadPlan {
        WorkloadPlan::new(self.loaded_keys(), self.reserve.clone(), mix, theta, seed)
    }

    /// A hot-write setup (Fig 8(b)): reserve a *consecutive* run of keys
    /// (10% of the dataset, taken from the middle) instead of a uniform
    /// sample, so insertions hammer one region and trigger retraining.
    pub fn hot_write(dataset: Dataset, keys: usize, seed: u64) -> Self {
        let pairs = Self::pairs(dataset, keys, seed);
        let start = pairs.len() / 2;
        let hot = pairs.len() / 10;
        let reserve: Vec<u64> = pairs[start..start + hot].iter().map(|p| p.0).collect();
        let bulk: Vec<(u64, u64)> = pairs[..start]
            .iter()
            .chain(&pairs[start + hot..])
            .copied()
            .collect();
        Self {
            dataset,
            bulk,
            reserve,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_split_is_half_and_disjoint() {
        let s = Setup::half(Dataset::Osm, 100_000, 1);
        assert!((s.bulk.len() as i64 - 50_000).abs() <= 1);
        assert_eq!(s.bulk.len() + s.reserve.len(), 100_000);
        let loaded: std::collections::HashSet<u64> = s.loaded_keys().into_iter().collect();
        assert!(s.reserve.iter().all(|k| !loaded.contains(k)));
    }

    #[test]
    fn reserve_is_spread_over_the_space() {
        let s = Setup::half(Dataset::Libio, 100_000, 1);
        // Interleaving ⇒ reserved keys interleave with loaded keys: the
        // median reserved key sits near the median loaded key.
        let mid_res = s.reserve[s.reserve.len() / 2];
        let loaded = s.loaded_keys();
        let mid_load = loaded[loaded.len() / 2];
        let span = loaded[loaded.len() - 1] - loaded[0];
        assert!((mid_res as i128 - mid_load as i128).unsigned_abs() < span as u128 / 10);
    }

    #[test]
    fn hot_write_reserve_is_consecutive() {
        let s = Setup::hot_write(Dataset::Libio, 100_000, 1);
        assert_eq!(s.reserve.len(), 10_000);
        for w in s.reserve.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Hot region is dense relative to the whole space.
        let span = s.reserve[s.reserve.len() - 1] - s.reserve[0];
        let bulk_span = s.bulk[s.bulk.len() - 1].0 - s.bulk[0].0;
        assert!(span < bulk_span / 5);
    }
}
