//! Optional hot-path metrics surfacing for the experiment binaries.
//!
//! Pass `--metrics` to any binary built with `--features metrics` and the
//! run's `obs` counters are appended to the report: one `#json` row per
//! nonzero counter (experiment-tagged, so `scripts/summarize_results.py`
//! picks them up alongside the throughput rows) plus the human-readable
//! dump. Without the feature the flag still parses but only prints a
//! pointer at the rebuild incantation — the hooks are compiled out, so
//! there is nothing to report.

use crate::cli::Args;

#[cfg(feature = "metrics")]
mod real {
    use super::*;
    use crate::report::Row;

    /// Emit the counters accumulated since process start (process-wide:
    /// run one experiment part per invocation when attributing numbers).
    pub fn emit_if_requested(args: &Args, experiment: &str) {
        if !args.metrics {
            return;
        }
        let snap = obs::snapshot();
        for (counter, count) in snap.counters() {
            if count == 0 {
                continue;
            }
            Row::new(experiment)
                .workload("metrics")
                .value(counter.name(), count as f64)
                .emit();
        }
        println!("{}", snap.render());
    }
}

#[cfg(not(feature = "metrics"))]
mod real {
    use super::*;

    /// The hooks are compiled out; tell the user how to get them.
    pub fn emit_if_requested(args: &Args, _experiment: &str) {
        if args.metrics {
            eprintln!(
                "--metrics requested but the `metrics` feature is compiled \
                 out; rebuild with `--features metrics`"
            );
        }
    }
}

pub use real::emit_if_requested;
