//! The index registry: every competitor the paper evaluates, buildable
//! behind one trait object.

use alt_index::{AltConfig, AltIndex};
use art::Art;
use baselines::{AlexLike, FinedexLike, LippLike, XIndexLike};
use index_api::{BulkLoad, ConcurrentIndex};
use std::sync::Arc;

/// Every index the evaluation compares, plus the ALT-index ablations of
/// §IV-H.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// The paper's contribution.
    Alt,
    /// ALT-index with the fast pointer buffer disabled (Fig 10(a)
    /// ablation: every ART access starts at the root).
    AltNoFastPtr,
    /// ALT-index with dynamic retraining disabled.
    AltNoRetrain,
    /// Plain concurrent ART (optimistic lock coupling).
    Art,
    /// ALEX+-like baseline.
    Alex,
    /// LIPP+-like baseline.
    Lipp,
    /// XIndex-like baseline.
    XIndex,
    /// FINEdex-like baseline.
    Finedex,
}

impl IndexKind {
    /// The paper's competitor set (Figs 7-9, Table I).
    pub const COMPETITORS: [IndexKind; 6] = [
        IndexKind::Alt,
        IndexKind::Alex,
        IndexKind::Lipp,
        IndexKind::XIndex,
        IndexKind::Finedex,
        IndexKind::Art,
    ];

    /// Display name (matches the paper's labels).
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Alt => "ALT-index",
            IndexKind::AltNoFastPtr => "ALT-noFP",
            IndexKind::AltNoRetrain => "ALT-noRT",
            IndexKind::Art => "ART",
            IndexKind::Alex => "ALEX+",
            IndexKind::Lipp => "LIPP+",
            IndexKind::XIndex => "XIndex",
            IndexKind::Finedex => "FINEdex",
        }
    }

    /// Bulk-load this index over sorted unique pairs, using the host's
    /// available parallelism for the indexes with a parallel builder.
    pub fn build(&self, pairs: &[(u64, u64)]) -> Arc<dyn ConcurrentIndex> {
        self.build_threaded(pairs, alt_index::default_build_threads())
    }

    /// Bulk-load with an explicit construction thread count (the
    /// `--build-threads` axis of the bulk_build experiment). `1` is the
    /// serial build path; indexes without a parallel builder (the
    /// baselines) fall back to it for any count.
    pub fn build_threaded(&self, pairs: &[(u64, u64)], threads: usize) -> Arc<dyn ConcurrentIndex> {
        match self {
            IndexKind::Alt => Arc::new(AltIndex::bulk_load_threaded(pairs, threads)),
            IndexKind::AltNoFastPtr => Arc::new(AltIndex::bulk_load_with(
                pairs,
                AltConfig {
                    fast_pointers: false,
                    build_threads: threads,
                    ..Default::default()
                },
            )),
            IndexKind::AltNoRetrain => Arc::new(AltIndex::bulk_load_with(
                pairs,
                AltConfig {
                    retrain: false,
                    build_threads: threads,
                    ..Default::default()
                },
            )),
            IndexKind::Art => Arc::new(Art::bulk_load_threaded(pairs, threads)),
            IndexKind::Alex => Arc::new(AlexLike::bulk_load_threaded(pairs, threads)),
            IndexKind::Lipp => Arc::new(LippLike::bulk_load_threaded(pairs, threads)),
            IndexKind::XIndex => Arc::new(XIndexLike::bulk_load_threaded(pairs, threads)),
            IndexKind::Finedex => Arc::new(FinedexLike::bulk_load_threaded(pairs, threads)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_answers() {
        let pairs: Vec<(u64, u64)> = (1..=20_000u64).map(|i| (i * 7, i)).collect();
        for kind in [
            IndexKind::Alt,
            IndexKind::AltNoFastPtr,
            IndexKind::AltNoRetrain,
            IndexKind::Art,
            IndexKind::Alex,
            IndexKind::Lipp,
            IndexKind::XIndex,
            IndexKind::Finedex,
        ] {
            let idx = kind.build(&pairs);
            assert_eq!(idx.len(), pairs.len(), "{}", kind.name());
            for &(k, v) in pairs.iter().step_by(997) {
                assert_eq!(idx.get(k), Some(v), "{} key {k}", kind.name());
            }
            idx.insert(3, 33).unwrap();
            assert_eq!(idx.get(3), Some(33), "{}", kind.name());
            assert!(idx.memory_usage() > 0);
        }
    }
}
