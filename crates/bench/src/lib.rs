//! The experiment harness: shared setup, the index registry, and report
//! formatting used by the per-table/per-figure binaries (`table1`,
//! `fig3`, `fig4`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`).
//!
//! Every binary regenerates the rows/series of one table or figure of the
//! ALT-index paper. Scale defaults are laptop-sized (2M keys instead of
//! the paper's 200M, thread count capped by the host); pass `--keys`,
//! `--threads`, `--ops` to change them. See `EXPERIMENTS.md` for the
//! recorded paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod chaos;
pub mod cli;
pub mod indexes;
pub mod metrics;
pub mod report;
pub mod setup;

pub use cli::Args;
pub use indexes::IndexKind;
pub use report::Row;
pub use setup::Setup;
