//! Result rows: aligned console tables plus JSON lines for downstream
//! plotting.

/// One measurement row (superset of what each experiment prints).
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment id, e.g. `fig7a`.
    pub experiment: String,
    /// Index label.
    pub index: String,
    /// Dataset label.
    pub dataset: String,
    /// Workload label or sweep parameter name.
    pub workload: String,
    /// Sweep x-value (threads, ε, θ, init ratio …), if any.
    pub x: Option<f64>,
    /// Throughput, million ops/sec.
    pub mops: Option<f64>,
    /// P99.9 latency, µs.
    pub p999_us: Option<f64>,
    /// Generic metric (model count, pointer count, bytes, share…).
    pub value: Option<f64>,
    /// What `value` measures.
    pub metric: String,
    /// SIMD kill-switch position the row was measured under, if the
    /// experiment sweeps it (batch_lookup): `Some(true)` = vector
    /// kernels on, `Some(false)` = forced scalar.
    pub simd: Option<bool>,
    /// The host's available parallelism at run time. Always recorded:
    /// throughput numbers are meaningless without knowing how many
    /// cores produced them (ROADMAP trust item).
    pub parallelism: usize,
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 the way serde_json does: always with a decimal point or
/// exponent so the value round-trips as a float.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        debug_assert!(s.contains('.') || s.contains('e') || s.contains("inf"));
        s
    } else {
        "null".to_string()
    }
}

impl Row {
    /// A blank row for `experiment`.
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            index: String::new(),
            dataset: String::new(),
            workload: String::new(),
            x: None,
            mops: None,
            p999_us: None,
            value: None,
            metric: String::new(),
            simd: None,
            parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Builder-style setters.
    pub fn index(mut self, v: &str) -> Self {
        self.index = v.to_string();
        self
    }
    /// Set the dataset label.
    pub fn dataset(mut self, v: &str) -> Self {
        self.dataset = v.to_string();
        self
    }
    /// Set the workload label.
    pub fn workload(mut self, v: &str) -> Self {
        self.workload = v.to_string();
        self
    }
    /// Set the sweep x-value.
    pub fn x(mut self, v: f64) -> Self {
        self.x = Some(v);
        self
    }
    /// Set throughput.
    pub fn mops(mut self, v: f64) -> Self {
        self.mops = Some(v);
        self
    }
    /// Set tail latency.
    pub fn p999(mut self, v: f64) -> Self {
        self.p999_us = Some(v);
        self
    }
    /// Set a generic metric value.
    pub fn value(mut self, metric: &str, v: f64) -> Self {
        self.metric = metric.to_string();
        self.value = Some(v);
        self
    }
    /// Tag the row with the SIMD kill-switch position it ran under.
    pub fn simd(mut self, on: bool) -> Self {
        self.simd = Some(on);
        self
    }

    /// Serialize to one compact JSON object, omitting unset optional
    /// fields (the shape `scripts/summarize_results.py` parses).
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"experiment\":\"{}\"", json_escape(&self.experiment)),
            format!("\"index\":\"{}\"", json_escape(&self.index)),
            format!("\"dataset\":\"{}\"", json_escape(&self.dataset)),
            format!("\"workload\":\"{}\"", json_escape(&self.workload)),
        ];
        if let Some(x) = self.x {
            fields.push(format!("\"x\":{}", json_f64(x)));
        }
        if let Some(m) = self.mops {
            fields.push(format!("\"mops\":{}", json_f64(m)));
        }
        if let Some(p) = self.p999_us {
            fields.push(format!("\"p999_us\":{}", json_f64(p)));
        }
        if let Some(v) = self.value {
            fields.push(format!("\"value\":{}", json_f64(v)));
        }
        if !self.metric.is_empty() {
            fields.push(format!("\"metric\":\"{}\"", json_escape(&self.metric)));
        }
        if let Some(on) = self.simd {
            fields.push(format!("\"simd\":\"{}\"", if on { "on" } else { "off" }));
        }
        fields.push(format!("\"parallelism\":{}", self.parallelism));
        format!("{{{}}}", fields.join(","))
    }

    /// Print as an aligned console line and a trailing JSON line (prefixed
    /// `#json ` so table parsing stays trivial).
    pub fn emit(&self) {
        let mut line = format!(
            "{:<8} {:<12} {:<8} {:<12}",
            self.experiment, self.index, self.dataset, self.workload
        );
        if let Some(x) = self.x {
            line += &format!(" x={x:<10.3}");
        }
        if let Some(m) = self.mops {
            line += &format!(" {m:>9.3} Mops/s");
        }
        if let Some(p) = self.p999_us {
            line += &format!(" p99.9={p:>9.2}us");
        }
        if let Some(v) = self.value {
            line += &format!(" {}={v:.4}", self.metric);
        }
        if let Some(on) = self.simd {
            line += &format!(" simd={}", if on { "on" } else { "off" });
        }
        println!("{line}");
        println!("#json {}", self.to_json());
    }
}

/// Print an experiment banner with the run configuration.
pub fn banner(name: &str, detail: &str) {
    println!("== {name}: {detail}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_serializes_compactly() {
        let r = Row::new("fig7a")
            .index("ALT-index")
            .dataset("osm")
            .workload("read-only")
            .mops(12.5)
            .p999(3.2);
        let js = r.to_json();
        assert!(js.contains("\"experiment\":\"fig7a\""));
        assert!(js.contains("\"mops\":12.5"));
        assert!(!js.contains("\"x\""), "unset fields omitted: {js}");
    }

    #[test]
    fn every_row_records_host_parallelism() {
        let r = Row::new("any");
        assert!(r.parallelism >= 1);
        assert!(
            r.to_json()
                .contains(&format!("\"parallelism\":{}", r.parallelism)),
            "parallelism must be present on every row"
        );
    }

    #[test]
    fn value_rows_carry_metric_names() {
        let r = Row::new("fig10b").value("fast_pointers", 42.0);
        let js = r.to_json();
        assert!(js.contains("\"metric\":\"fast_pointers\""));
        assert!(js.contains("\"value\":42.0"));
    }

    #[test]
    fn simd_tag_emits_on_off() {
        let js = Row::new("batch_lookup").simd(true).to_json();
        assert!(js.contains("\"simd\":\"on\""));
        let js = Row::new("batch_lookup").simd(false).to_json();
        assert!(js.contains("\"simd\":\"off\""));
        assert!(
            !Row::new("batch_lookup").to_json().contains("\"simd\""),
            "untagged rows omit the field"
        );
    }

    #[test]
    fn json_floats_roundtrip_as_floats() {
        assert_eq!(super::json_f64(42.0), "42.0");
        assert_eq!(super::json_f64(12.5), "12.5");
        assert_eq!(super::json_f64(f64::NAN), "null");
    }

    #[test]
    fn json_strings_are_escaped() {
        let r = Row::new("e\"x").index("a\\b");
        let js = r.to_json();
        assert!(js.contains("\"experiment\":\"e\\\"x\""));
        assert!(js.contains("\"index\":\"a\\\\b\""));
    }
}
