//! Result rows: aligned console tables plus JSON lines for downstream
//! plotting.

use serde::Serialize;

/// One measurement row (superset of what each experiment prints).
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Experiment id, e.g. `fig7a`.
    pub experiment: String,
    /// Index label.
    pub index: String,
    /// Dataset label.
    pub dataset: String,
    /// Workload label or sweep parameter name.
    pub workload: String,
    /// Sweep x-value (threads, ε, θ, init ratio …), if any.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub x: Option<f64>,
    /// Throughput, million ops/sec.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub mops: Option<f64>,
    /// P99.9 latency, µs.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub p999_us: Option<f64>,
    /// Generic metric (model count, pointer count, bytes, share…).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub value: Option<f64>,
    /// What `value` measures.
    #[serde(skip_serializing_if = "String::is_empty", default)]
    pub metric: String,
}

impl Row {
    /// A blank row for `experiment`.
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            index: String::new(),
            dataset: String::new(),
            workload: String::new(),
            x: None,
            mops: None,
            p999_us: None,
            value: None,
            metric: String::new(),
        }
    }

    /// Builder-style setters.
    pub fn index(mut self, v: &str) -> Self {
        self.index = v.to_string();
        self
    }
    /// Set the dataset label.
    pub fn dataset(mut self, v: &str) -> Self {
        self.dataset = v.to_string();
        self
    }
    /// Set the workload label.
    pub fn workload(mut self, v: &str) -> Self {
        self.workload = v.to_string();
        self
    }
    /// Set the sweep x-value.
    pub fn x(mut self, v: f64) -> Self {
        self.x = Some(v);
        self
    }
    /// Set throughput.
    pub fn mops(mut self, v: f64) -> Self {
        self.mops = Some(v);
        self
    }
    /// Set tail latency.
    pub fn p999(mut self, v: f64) -> Self {
        self.p999_us = Some(v);
        self
    }
    /// Set a generic metric value.
    pub fn value(mut self, metric: &str, v: f64) -> Self {
        self.metric = metric.to_string();
        self.value = Some(v);
        self
    }

    /// Print as an aligned console line and a trailing JSON line (prefixed
    /// `#json ` so table parsing stays trivial).
    pub fn emit(&self) {
        let mut line = format!(
            "{:<8} {:<12} {:<8} {:<12}",
            self.experiment, self.index, self.dataset, self.workload
        );
        if let Some(x) = self.x {
            line += &format!(" x={x:<10.3}");
        }
        if let Some(m) = self.mops {
            line += &format!(" {m:>9.3} Mops/s");
        }
        if let Some(p) = self.p999_us {
            line += &format!(" p99.9={p:>9.2}us");
        }
        if let Some(v) = self.value {
            line += &format!(" {}={v:.4}", self.metric);
        }
        println!("{line}");
        println!(
            "#json {}",
            serde_json::to_string(self).expect("row serializes")
        );
    }
}

/// Print an experiment banner with the run configuration.
pub fn banner(name: &str, detail: &str) {
    println!("== {name}: {detail}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_serializes_compactly() {
        let r = Row::new("fig7a")
            .index("ALT-index")
            .dataset("osm")
            .workload("read-only")
            .mops(12.5)
            .p999(3.2);
        let js = serde_json::to_string(&r).unwrap();
        assert!(js.contains("\"experiment\":\"fig7a\""));
        assert!(js.contains("\"mops\":12.5"));
        assert!(!js.contains("\"x\""), "unset fields omitted: {js}");
    }

    #[test]
    fn value_rows_carry_metric_names() {
        let r = Row::new("fig10b").value("fast_pointers", 42.0);
        let js = serde_json::to_string(&r).unwrap();
        assert!(js.contains("\"metric\":\"fast_pointers\""));
        assert!(js.contains("\"value\":42.0"));
    }
}
