//! Optional chaos-schedule installation for the experiment binaries.
//!
//! Pass `--chaos-seed N` to a binary built with `--features chaos` and a
//! deterministic schedule-perturbing run (see `testkit::chaos` and
//! TESTING.md) is installed for the whole experiment. The perturbation
//! widens contention windows on every instrumented optimistic path,
//! which is how CI drives the resilience escalation counters to nonzero
//! values in a plain bench run (combine with `--metrics` and the
//! `ALT_RESILIENCE_*` budget variables). Without the feature the flag
//! still parses but only prints the rebuild incantation — the hooks are
//! compiled out, so the schedule would perturb nothing.

use crate::cli::Args;

#[cfg(feature = "chaos")]
mod real {
    use super::*;

    /// Keeps the chaos schedule installed; dropping it disables the
    /// perturbation again.
    pub struct ChaosGuard {
        _guard: Option<testkit::chaos::ScheduleGuard>,
    }

    /// Moderate perturbation probability (out of 1024): enough to widen
    /// contention windows without drowning the run in sleeps.
    const INTENSITY: u32 = 256;

    /// Install the schedule if `--chaos-seed` was passed. Hold the
    /// returned guard for the duration of the experiment.
    #[must_use = "the chaos schedule is uninstalled when the guard drops"]
    pub fn install_if_requested(args: &Args) -> ChaosGuard {
        ChaosGuard {
            _guard: args.chaos_seed.map(|seed| {
                eprintln!("# chaos schedule installed: seed={seed} intensity={INTENSITY}/1024");
                testkit::chaos::install_schedule(seed, INTENSITY)
            }),
        }
    }
}

#[cfg(not(feature = "chaos"))]
mod real {
    use super::*;

    /// No-op placeholder so call sites hold a guard unconditionally.
    pub struct ChaosGuard {}

    /// The hooks are compiled out; tell the user how to get them.
    #[must_use = "the chaos schedule is uninstalled when the guard drops"]
    pub fn install_if_requested(args: &Args) -> ChaosGuard {
        if args.chaos_seed.is_some() {
            eprintln!(
                "--chaos-seed requested but the `chaos` feature is compiled \
                 out; rebuild with `--features chaos`"
            );
        }
        ChaosGuard {}
    }
}

pub use real::{install_if_requested, ChaosGuard};
