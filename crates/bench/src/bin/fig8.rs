//! **Fig 8**: memory overhead (a), hot-write (b), short scans (c),
//! init-table-size sweep (d), and skewed reads (e).
//!
//! Paper shape: (a) LIPP+ uses the most memory, ALEX+ the least,
//! ALT-index beats the delta-buffer designs; (b) ALT-index wins hot
//! writes thanks to retraining, XIndex stays stable via background
//! merges; (c) ALEX+ scans fastest, ALT-index is competitive with the
//! rest; (d) ALT-index degrades least as the init ratio grows; (e)
//! everyone speeds up with skew, ALT-index stays on top.

use bench::report::banner;
use bench::{Args, IndexKind, Row, Setup};
use datasets::Dataset;
use workloads::{run_workload, DriverConfig, Mix, WorkloadPlan};

fn main() {
    let args = Args::parse();
    banner(
        "fig8",
        &format!(
            "keys={}, threads={}, ops/thread={}",
            args.keys, args.threads, args.ops
        ),
    );
    let cfg = DriverConfig {
        threads: args.threads,
        ops_per_thread: args.ops,
        latency_sample_every: 16,
        batch: 0,
    };

    // (a) Memory overhead: bulk-load 50%, insert the rest, measure bytes.
    if args.wants_part("a") {
        for &ds in &args.datasets {
            let setup = Setup::half(ds, args.keys, args.seed);
            for kind in IndexKind::COMPETITORS {
                if !args.wants_index(kind.name()) {
                    continue;
                }
                let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
                for &k in &setup.reserve {
                    let _ = idx.insert(k, k ^ 0x5555);
                }
                Row::new("fig8a")
                    .index(kind.name())
                    .dataset(ds.name())
                    .value("mb", idx.memory_usage() as f64 / (1 << 20) as f64)
                    .emit();
            }
        }
    }

    // (b) Hot write: consecutive reserved keys hammering one region.
    if args.wants_part("b") {
        for &ds in &args.datasets {
            let setup = Setup::hot_write(ds, args.keys, args.seed);
            for kind in IndexKind::COMPETITORS {
                if !args.wants_index(kind.name()) {
                    continue;
                }
                let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
                let plan = setup.plan(Mix::BALANCED, args.theta, args.seed);
                let r = run_workload(&idx, &plan, &cfg);
                Row::new("fig8b")
                    .index(kind.name())
                    .dataset(ds.name())
                    .workload("hot-write")
                    .mops(r.mops)
                    .p999(r.p999_us)
                    .emit();
            }
        }
    }

    // (c) Scan workload: 100-key scans from zipfian start keys.
    if args.wants_part("c") {
        for &ds in &args.datasets {
            let setup = Setup::half(ds, args.keys, args.seed);
            for kind in IndexKind::COMPETITORS {
                if !args.wants_index(kind.name()) {
                    continue;
                }
                let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
                let plan = setup.plan(Mix::SCAN, args.theta, args.seed);
                let scan_cfg = DriverConfig {
                    ops_per_thread: (args.ops / 20).max(1_000),
                    ..cfg.clone()
                };
                let r = run_workload(&idx, &plan, &scan_cfg);
                Row::new("fig8c")
                    .index(kind.name())
                    .dataset(ds.name())
                    .workload("scan100")
                    .mops(r.mops)
                    .emit();
            }
        }
    }

    // (d) Init table size: read throughput after loading 25/50/75/100%.
    if args.wants_part("d") {
        let ds = Dataset::Osm;
        for ratio in [0.25, 0.5, 0.75, 1.0] {
            let setup = Setup::new(ds, args.keys, ratio, args.seed);
            for kind in IndexKind::COMPETITORS {
                if !args.wants_index(kind.name()) {
                    continue;
                }
                let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
                let plan = setup.plan(Mix::READ_ONLY, args.theta, args.seed);
                let r = run_workload(&idx, &plan, &cfg);
                Row::new("fig8d")
                    .index(kind.name())
                    .dataset(ds.name())
                    .workload("read-only")
                    .x(ratio)
                    .mops(r.mops)
                    .emit();
            }
        }
    }

    // (e) Skew: balanced workload on osm with varying zipf θ.
    if args.wants_part("e") {
        let ds = Dataset::Osm;
        let setup = Setup::half(ds, args.keys, args.seed);
        for theta in [0.0, 0.5, 0.8, 0.9, 0.99] {
            for kind in IndexKind::COMPETITORS {
                if !args.wants_index(kind.name()) {
                    continue;
                }
                let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
                let plan = WorkloadPlan::new(
                    setup.loaded_keys(),
                    setup.reserve.clone(),
                    Mix::BALANCED,
                    theta,
                    args.seed,
                );
                let r = run_workload(&idx, &plan, &cfg);
                Row::new("fig8e")
                    .index(kind.name())
                    .dataset(ds.name())
                    .workload("balanced")
                    .x(theta)
                    .mops(r.mops)
                    .emit();
            }
        }
    }

    bench::metrics::emit_if_requested(&args, "fig8");
}
