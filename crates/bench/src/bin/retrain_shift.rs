//! **retrain_shift**: throughput-over-time under distribution shift,
//! inline vs background retraining — the measurement behind the
//! background-scheduler tentpole. Each of the three shift workloads
//! (monotonic append, rolling window, sudden mid-run shift) runs twice
//! over an ALT-index built from the same preload: once with the paper's
//! inline §III-F retrain on the hot path (`alt-inline`), once with the
//! budgeted worker pool (`alt-bg`). The driver records operations
//! completed per fixed-width time bucket (`--bucket-ms`, default 50),
//! so the inline retrain stalls show up as dips in the curve and the
//! background runs show how much of the dip the scheduler removes.
//!
//! Emitted `#json` rows (collected into `results/BENCH_retrain_shift.json`
//! by `scripts/run_all_experiments.sh`):
//!
//! * one summary row per (workload, mode): overall `mops`, with
//!   `value`/`metric` rows for total retrains, the min/median bucket
//!   throughput ratio (1.0 = perfectly flat, lower = deeper stall), and
//!   the always-on fault/self-healing counters (`retrain_bg_dropped`,
//!   `retrain_bg_panics`, `worker_respawns`, `degraded_mode_entries`,
//!   `retrain_rollbacks` — nonzero only when the queue sheds or the
//!   `fault` feature injects failures);
//! * one timeline row per bucket: `x` = bucket start in ms, `mops` =
//!   that bucket's throughput.
//!
//! Both modes replay byte-identical streams; the bin asserts the final
//! index lengths agree before reporting anything.

use bench::report::{banner, Row};
use bench::Args;
use index_api::ConcurrentIndex;
use std::sync::Arc;
use workloads::{run_streams_timed, ShiftKind, ShiftPlan, TimedResult};

/// Median of a sorted copy (0 for empty input).
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Min/median bucket-throughput ratio over the interior buckets (the
/// final bucket is partially filled by construction and would read as a
/// fake stall).
fn stall_ratio(r: &TimedResult) -> f64 {
    let mut m = r.bucket_mops();
    m.pop();
    if m.is_empty() {
        return 1.0;
    }
    let med = median(&m);
    if med <= 0.0 {
        // More than half the buckets produced nothing: the run is
        // dominated by stalls, the worst possible ratio.
        return 0.0;
    }
    m.iter().copied().fold(f64::INFINITY, f64::min) / med
}

fn run_mode(
    label: &str,
    background: bool,
    plan: &ShiftPlan,
    args: &Args,
) -> (TimedResult, usize, usize, alt_index::FaultStats) {
    let cfg = if background {
        alt_index::AltConfig::background()
    } else {
        alt_index::AltConfig::default()
    };
    let idx = Arc::new(alt_index::AltIndex::bulk_load_with(
        &plan.initial_pairs(),
        cfg,
    ));
    let streams: Vec<_> = (0..args.threads)
        .map(|t| plan.stream(t, args.threads, args.ops))
        .collect();
    let r = run_streams_timed(&*idx, streams, args.bucket_ms);
    idx.retrain_quiesce();
    assert_eq!(r.failed_inserts, 0, "{label}: shift streams are disjoint");
    let faults = idx.fault_stats();
    (r, idx.retrain_count(), ConcurrentIndex::len(&*idx), faults)
}

fn main() {
    let args = Args::parse();
    // The preload must sit well below the per-run insert volume or the
    // tail model never overflows its own build size and nothing
    // retrains (see crates/workloads/src/shift.rs).
    // /8 keeps it below even the rolling window's insert share (half its
    // mutate half), so all three workloads retrain.
    let preload = ((args.ops * args.threads / 8) as u64).max(1_000);
    banner(
        "retrain_shift",
        &format!(
            "threads={}, ops/thread={}, preload={preload}, bucket={}ms, seed={}",
            args.threads, args.ops, args.bucket_ms, args.seed
        ),
    );
    for kind in ShiftKind::ALL {
        let mut plan = ShiftPlan::new(kind, args.seed);
        plan.preload = preload;
        let mut lens = Vec::new();
        for (label, background) in [("alt-inline", false), ("alt-bg", true)] {
            if !args.wants_index(label) {
                continue;
            }
            let (r, retrains, len, faults) = run_mode(label, background, &plan, &args);
            lens.push((label, len));
            Row::new("retrain_shift")
                .index(label)
                .dataset(kind.label())
                .workload("summary")
                .mops(r.mops)
                .value("stall_ratio", stall_ratio(&r))
                .emit();
            Row::new("retrain_shift")
                .index(label)
                .dataset(kind.label())
                .workload("summary")
                .value("retrains", retrains as f64)
                .emit();
            // Fault/self-healing counters (always-on; nonzero only when
            // the queue sheds or the `fault` feature injects failures).
            for (metric, v) in [
                ("retrain_bg_dropped", faults.bg_dropped as f64),
                ("retrain_bg_panics", faults.bg_panics as f64),
                ("worker_respawns", faults.worker_respawns as f64),
                ("degraded_mode_entries", faults.degraded_mode_entries as f64),
                ("retrain_rollbacks", faults.retrain_rollbacks as f64),
            ] {
                Row::new("retrain_shift")
                    .index(label)
                    .dataset(kind.label())
                    .workload("summary")
                    .value(metric, v)
                    .emit();
            }
            for (i, m) in r.bucket_mops().iter().enumerate() {
                Row::new("retrain_shift")
                    .index(label)
                    .dataset(kind.label())
                    .workload("timeline")
                    .x((i as u64 * r.bucket_ms) as f64)
                    .mops(*m)
                    .emit();
            }
        }
        if let [(_, a), (_, b)] = lens[..] {
            assert_eq!(
                a,
                b,
                "{}: inline and background runs of identical streams \
                 must store the same number of keys",
                kind.label()
            );
        }
    }
}
