//! **Table I**: throughput and P99.9 latency of the concurrent updatable
//! learned indexes and ART on `libio` and `osm` under the
//! read-write-balanced workload.
//!
//! Paper shape to reproduce (200M keys, 32 threads): ALEX+ fastest on
//! libio but with a large P99.9 blow-up on osm (data shifting); LIPP+
//! slowest overall (statistics counters); FINEdex/XIndex mid-pack; ART
//! high throughput on both.
use bench::report::banner;
use bench::{Args, IndexKind, Row, Setup};
use datasets::Dataset;
use workloads::{run_workload, DriverConfig, Mix};

fn main() {
    let args = Args::parse();
    let _chaos = bench::chaos::install_if_requested(&args);
    banner(
        "table1",
        &format!(
            "balanced 50/50, keys={}, threads={}, ops/thread={}",
            args.keys, args.threads, args.ops
        ),
    );
    for ds in [Dataset::Libio, Dataset::Osm] {
        let setup = Setup::half(ds, args.keys, args.seed);
        for kind in IndexKind::COMPETITORS {
            if !args.wants_index(kind.name()) {
                continue;
            }
            let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
            let plan = setup.plan(Mix::BALANCED, args.theta, args.seed);
            let cfg = DriverConfig {
                threads: args.threads,
                ops_per_thread: args.ops,
                latency_sample_every: 8,
                batch: 0,
            };
            let r = run_workload(&idx, &plan, &cfg);
            Row::new("table1")
                .index(kind.name())
                .dataset(ds.name())
                .workload("balanced")
                .mops(r.mops)
                .p999(r.p999_us)
                .emit();
        }
    }

    bench::metrics::emit_if_requested(&args, "table1");
}
