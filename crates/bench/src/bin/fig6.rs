//! **Fig 6**: the error bound's effect on ALT-index.
//!
//! * Part (a): ε versus the number of GPL models — the paper's inverse
//!   proportionality `N_total = δ_h · ε · N_model` (Eq. 1).
//! * Part (b): ε versus read-only throughput — rises, peaks, then slowly
//!   declines through the "stable area" as conflict data shifts into ART
//!   (Eq. 4).

use alt_index::{AltConfig, AltIndex};
use bench::report::banner;
use bench::{Args, Row, Setup};
use index_api::ConcurrentIndex;
use std::sync::Arc;
use workloads::{run_workload, DriverConfig, Mix};

fn main() {
    let args = Args::parse();
    banner(
        "fig6",
        &format!("keys={}, threads={}", args.keys, args.threads),
    );
    let sweep: Vec<f64> = [16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0].to_vec();
    for &ds in &args.datasets {
        let setup = Setup::half(ds, args.keys, args.seed);
        for &eps in &sweep {
            let idx = AltIndex::bulk_load_with(
                &setup.bulk,
                AltConfig {
                    epsilon: Some(eps),
                    ..Default::default()
                },
            );
            let stats = idx.stats();
            if args.wants_part("a") {
                Row::new("fig6a")
                    .index("ALT-index")
                    .dataset(ds.name())
                    .x(eps)
                    .value("models", stats.num_models as f64)
                    .emit();
            }
            if args.wants_part("b") {
                let idx: Arc<dyn ConcurrentIndex> = Arc::new(idx);
                let plan = setup.plan(Mix::READ_ONLY, args.theta, args.seed);
                let cfg = DriverConfig {
                    threads: args.threads,
                    ops_per_thread: args.ops,
                    latency_sample_every: 16,
                    batch: 0,
                };
                let r = run_workload(&idx, &plan, &cfg);
                Row::new("fig6b")
                    .index("ALT-index")
                    .dataset(ds.name())
                    .workload("read-only")
                    .x(eps)
                    .mops(r.mops)
                    .emit();
            }
        }
    }

    bench::metrics::emit_if_requested(&args, "fig6");
}
