//! ALT-index ablations: quantify each design choice DESIGN.md calls out —
//! the fast pointer buffer (§III-C), dynamic retraining (§III-F), the
//! read write-back (Algorithm 2), and the gap budget.
//!
//! Generalizes the paper's §IV-H "inside analysis" into end-to-end
//! throughput deltas. Parts:
//!   a — fast pointers on/off (balanced workload)
//!   b — retraining on/off (hot-write workload)
//!   c — write-back on/off (remove-then-read workload)
//!   d — gap factor sweep (balanced; throughput vs memory)

use alt_index::{AltConfig, AltIndex};
use bench::report::banner;
use bench::{Args, Row, Setup};
use index_api::ConcurrentIndex;
use std::sync::Arc;
use workloads::{run_workload, DriverConfig, Mix};

fn main() {
    let args = Args::parse();
    banner(
        "ablation",
        &format!(
            "keys={}, threads={}, ops/thread={}",
            args.keys, args.threads, args.ops
        ),
    );
    let cfg = DriverConfig {
        threads: args.threads,
        ops_per_thread: args.ops,
        latency_sample_every: 16,
        batch: 0,
    };

    if args.wants_part("a") {
        for &ds in &args.datasets {
            let setup = Setup::half(ds, args.keys, args.seed);
            for (label, fp) in [("fast-ptr-on", true), ("fast-ptr-off", false)] {
                let idx: Arc<dyn ConcurrentIndex> = Arc::new(AltIndex::bulk_load_with(
                    &setup.bulk,
                    AltConfig {
                        fast_pointers: fp,
                        ..Default::default()
                    },
                ));
                let plan = setup.plan(Mix::BALANCED, args.theta, args.seed);
                let r = run_workload(&idx, &plan, &cfg);
                Row::new("abl-a")
                    .index(label)
                    .dataset(ds.name())
                    .workload("balanced")
                    .mops(r.mops)
                    .p999(r.p999_us)
                    .emit();
            }
        }
    }

    if args.wants_part("b") {
        for &ds in &args.datasets {
            let setup = Setup::hot_write(ds, args.keys, args.seed);
            for (label, rt) in [("retrain-on", true), ("retrain-off", false)] {
                let idx = Arc::new(AltIndex::bulk_load_with(
                    &setup.bulk,
                    AltConfig {
                        retrain: rt,
                        ..Default::default()
                    },
                ));
                let plan = setup.plan(Mix::BALANCED, args.theta, args.seed);
                let r = run_workload(&idx, &plan, &cfg);
                let stats = idx.stats();
                Row::new("abl-b")
                    .index(label)
                    .dataset(ds.name())
                    .workload("hot-write")
                    .mops(r.mops)
                    .value("learned_share", stats.learned_share())
                    .emit();
            }
        }
    }

    if args.wants_part("c") {
        // Remove slot residents, then read ART residents repeatedly: the
        // write-back should promote them and speed up re-reads.
        for &ds in &args.datasets {
            let setup = Setup::half(ds, args.keys, args.seed);
            for (label, wb) in [("write-back-on", true), ("write-back-off", false)] {
                let idx = AltIndex::bulk_load_with(
                    &setup.bulk,
                    AltConfig {
                        write_back: wb,
                        retrain: false,
                        ..Default::default()
                    },
                );
                // Insert conflicts, remove their slot neighbours, re-read.
                let sample: Vec<u64> = setup
                    .reserve
                    .iter()
                    .step_by(4)
                    .copied()
                    .take(50_000)
                    .collect();
                for &k in &sample {
                    let _ = idx.insert(k, k);
                }
                for &(k, _) in setup.bulk.iter().step_by(4).take(50_000) {
                    idx.remove(k);
                }
                let t0 = std::time::Instant::now();
                let mut found = 0usize;
                for _ in 0..4 {
                    for &k in &sample {
                        found += idx.get(k).is_some() as usize;
                    }
                }
                let mops = (4 * sample.len()) as f64 / t0.elapsed().as_secs_f64() / 1e6;
                assert_eq!(found, 4 * sample.len());
                Row::new("abl-c")
                    .index(label)
                    .dataset(ds.name())
                    .workload("remove-reread")
                    .mops(mops)
                    .value("art_keys_after", idx.stats().keys_in_art as f64)
                    .emit();
            }
        }
    }

    if args.wants_part("d") {
        let ds = args
            .datasets
            .first()
            .copied()
            .unwrap_or(datasets::Dataset::Osm);
        let setup = Setup::half(ds, args.keys, args.seed);
        for gap in [1.0, 1.25, 1.5, 2.0, 3.0] {
            let idx = Arc::new(AltIndex::bulk_load_with(
                &setup.bulk,
                AltConfig {
                    gap_factor: gap,
                    ..Default::default()
                },
            ));
            let plan = setup.plan(Mix::BALANCED, args.theta, args.seed);
            let r = run_workload(&idx, &plan, &cfg);
            Row::new("abl-d")
                .index("ALT-index")
                .dataset(ds.name())
                .workload("balanced")
                .x(gap)
                .mops(r.mops)
                .value("mb", idx.memory_usage() as f64 / (1 << 20) as f64)
                .emit();
        }
    }

    bench::metrics::emit_if_requested(&args, "ablation");
}
