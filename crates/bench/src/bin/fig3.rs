//! **Fig 3**: why existing learned indexes can't have both few models and
//! small prediction errors.
//!
//! * Part (a): model counts of XIndex (RMI groups) and FINEdex (LPA
//!   segments) versus ALT-index's GPL model count on the four datasets —
//!   the paper reports millions vs thousands.
//! * Part (b): read-only throughput of FINEdex and XIndex as the error
//!   bound grows (peak near 32-64, then decline as the secondary-search
//!   window dominates).

use alt_index::AltIndex;
use baselines::{FinedexLike, XIndexLike};
use bench::report::banner;
use bench::{Args, Row, Setup};
use index_api::ConcurrentIndex;
use std::sync::Arc;
use workloads::{run_workload, DriverConfig, Mix};

fn main() {
    let args = Args::parse();
    banner(
        "fig3",
        &format!("keys={}, threads={}", args.keys, args.threads),
    );

    if args.wants_part("a") {
        for &ds in &args.datasets {
            let setup = Setup::new(ds, args.keys, 1.0, args.seed);
            let fin = FinedexLike::build(&setup.bulk);
            Row::new("fig3a")
                .index("FINEdex")
                .dataset(ds.name())
                .value("models", fin.num_models() as f64)
                .emit();
            let x = XIndexLike::build(&setup.bulk);
            Row::new("fig3a")
                .index("XIndex")
                .dataset(ds.name())
                .value("models", x.num_groups() as f64)
                .emit();
            let alt = AltIndex::bulk_load_default(&setup.bulk);
            Row::new("fig3a")
                .index("ALT-index")
                .dataset(ds.name())
                .value("models", alt.stats().num_models as f64)
                .emit();
        }
    }

    if args.wants_part("b") {
        // Sweep the error budget: FINEdex via its LPA ε, XIndex via group
        // size (bigger groups ⇒ bigger model error).
        let ds = args
            .datasets
            .first()
            .copied()
            .unwrap_or(datasets::Dataset::Osm);
        let setup = Setup::half(ds, args.keys, args.seed);
        let cfg = DriverConfig {
            threads: args.threads,
            ops_per_thread: args.ops,
            latency_sample_every: 16,
            batch: 0,
        };
        for eps in [8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0] {
            let fin: Arc<dyn ConcurrentIndex> =
                Arc::new(FinedexLike::build_with_eps(&setup.bulk, eps));
            let plan = setup.plan(Mix::READ_ONLY, args.theta, args.seed);
            let r = run_workload(&fin, &plan, &cfg);
            Row::new("fig3b")
                .index("FINEdex")
                .dataset(ds.name())
                .workload("read-only")
                .x(eps)
                .mops(r.mops)
                .emit();

            let group = (eps * 24.0) as usize; // err grows ~linearly in group size
            let xi: Arc<dyn ConcurrentIndex> =
                Arc::new(XIndexLike::build_with_group(&setup.bulk, group));
            let r = run_workload(&xi, &plan, &cfg);
            Row::new("fig3b")
                .index("XIndex")
                .dataset(ds.name())
                .workload("read-only")
                .x(eps)
                .mops(r.mops)
                .emit();
        }
    }

    bench::metrics::emit_if_requested(&args, "fig3");
}
