//! **Fig 4**: segmentation algorithm comparison — GPL (ALT-index) versus
//! ShrinkingCone (FITing-tree) versus LPA (FINEdex).
//!
//! The figure itself is a schematic; the measurable claims behind it are
//! (1) GPL segments in a single O(n) pass with at most one slope-pair
//! update per point, (2) all three respect the error bound, and (3) the
//! algorithms trade segment count against segmentation work. This binary
//! reports segment counts, build times, and the verified max error per
//! algorithm per dataset.

use bench::report::banner;
use bench::{Args, Row, Setup};
use learned::{gpl_segment, lpa_segment, optimal_segment_count, shrinking_cone_segment};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let eps = 64.0;
    banner("fig4", &format!("keys={}, eps={eps}", args.keys));
    for &ds in &args.datasets {
        let setup = Setup::new(ds, args.keys, 1.0, args.seed);
        let keys: Vec<u64> = setup.bulk.iter().map(|p| p.0).collect();

        type Segmenter = Box<dyn Fn(&[u64]) -> Vec<learned::Segment>>;
        let algos: [(&str, Segmenter); 3] = [
            ("GPL", Box::new(move |k: &[u64]| gpl_segment(k, eps))),
            (
                "ShrinkingCone",
                Box::new(move |k: &[u64]| shrinking_cone_segment(k, eps)),
            ),
            ("LPA", Box::new(move |k: &[u64]| lpa_segment(k, eps, 32))),
        ];
        for (name, f) in &algos {
            let t0 = Instant::now();
            let segs = f(&keys);
            let secs = t0.elapsed().as_secs_f64();
            let max_err = segs
                .iter()
                .map(|s| s.max_error(&keys))
                .fold(0.0f64, f64::max);
            assert!(
                max_err <= eps + 1e-6,
                "{name} violated its bound: {max_err}"
            );
            Row::new("fig4")
                .index(name)
                .dataset(ds.name())
                .value("segments", segs.len() as f64)
                .emit();
            Row::new("fig4")
                .index(name)
                .dataset(ds.name())
                .value("build_ms", secs * 1e3)
                .emit();
            Row::new("fig4")
                .index(name)
                .dataset(ds.name())
                .value("max_err", max_err)
                .emit();
        }
        // The ε-optimal lower bound (reference segmenter, not a
        // production path): how close do the O(n) algorithms come?
        if keys.len() <= 500_000 {
            let opt = optimal_segment_count(&keys, eps);
            Row::new("fig4")
                .index("optimal")
                .dataset(ds.name())
                .value("segments", opt as f64)
                .emit();
        }
    }

    bench::metrics::emit_if_requested(&args, "fig4");
}
