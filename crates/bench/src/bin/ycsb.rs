//! General-purpose workload runner: any index, dataset, mix, skew, and
//! thread count from the command line — the free-form companion to the
//! fixed per-figure binaries.
//!
//! ```sh
//! cargo run --release -p bench --bin ycsb -- \
//!     --keys 2m --threads 8 --ops 500k --datasets osm \
//!     --indexes alt-index,art --mix 80,20,0 --theta 0.9
//! ```
//!
//! `--batch N` (N >= 2) routes runs of consecutive reads through
//! `get_batch` in N-wide flushes (see `DriverConfig::batch`); rows are
//! then labelled `<mix>+batchN`.
//!
//! `--ycsb d|e` switches from the percentage mixes to the YCSB D
//! (latest-read) or E (scan-heavy) scenario generators; rows are then
//! labelled `ycsb-d` / `ycsb-e` and `--mix`/`--batch` are ignored.

use bench::report::banner;
use bench::{Args, IndexKind, Row, Setup};
use workloads::{run_streams, run_workload, DriverConfig, Mix, YcsbKind, YcsbPlan};

fn main() {
    // Split off the extra --mix / --batch / --ycsb flags before the
    // common parser.
    let mut mix = Mix::BALANCED;
    let mut batch = 0usize;
    let mut ycsb: Option<YcsbKind> = None;
    let mut rest = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        if a == "--mix" {
            let v = argv.next().expect("--mix r,i,s");
            let parts: Vec<u8> = v
                .split(',')
                .map(|p| p.parse().expect("mix percentage"))
                .collect();
            assert_eq!(parts.len(), 3, "--mix read,insert,scan");
            mix = Mix::new(parts[0], parts[1], parts[2]);
        } else if a == "--batch" {
            batch = argv.next().expect("--batch N").parse().expect("--batch");
        } else if a == "--ycsb" {
            let v = argv.next().expect("--ycsb d|e");
            ycsb = Some(YcsbKind::parse(&v).expect("--ycsb d|e"));
        } else {
            rest.push(a);
        }
    }
    let args = Args::parse_from(rest);
    let mix_label = match ycsb {
        Some(kind) => kind.label().to_string(),
        None => format!("{}/{}/{}", mix.read_pct, mix.insert_pct, mix.scan_pct),
    };
    banner(
        "ycsb",
        &format!(
            "mix={} keys={} threads={} ops/thread={} theta={} batch={}",
            mix_label, args.keys, args.threads, args.ops, args.theta, batch
        ),
    );
    let kinds = [
        IndexKind::Alt,
        IndexKind::AltNoFastPtr,
        IndexKind::AltNoRetrain,
        IndexKind::Art,
        IndexKind::Alex,
        IndexKind::Lipp,
        IndexKind::XIndex,
        IndexKind::Finedex,
    ];
    for &ds in &args.datasets {
        let setup = Setup::half(ds, args.keys, args.seed);
        for kind in kinds {
            if !args.wants_index(kind.name()) {
                continue;
            }
            let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
            let (r, workload) = if let Some(kind) = ycsb {
                let plan = YcsbPlan::new(
                    setup.loaded_keys(),
                    setup.reserve.clone(),
                    kind,
                    args.theta,
                    args.seed,
                );
                let streams: Vec<_> = (0..args.threads)
                    .map(|t| plan.stream(t, args.threads, args.ops))
                    .collect();
                (
                    run_streams(idx.as_ref(), streams, 8),
                    kind.label().to_string(),
                )
            } else {
                let plan = setup.plan(mix, args.theta, args.seed);
                let cfg = DriverConfig {
                    threads: args.threads,
                    ops_per_thread: args.ops,
                    latency_sample_every: 8,
                    batch,
                };
                let workload = if batch >= 2 {
                    format!("{}+batch{batch}", mix.label())
                } else {
                    mix.label().to_string()
                };
                (run_workload(&idx, &plan, &cfg), workload)
            };
            Row::new("ycsb")
                .index(kind.name())
                .dataset(ds.name())
                .workload(&workload)
                .mops(r.mops)
                .p999(r.p999_us)
                .value(
                    "read_hit_rate",
                    if r.reads > 0 {
                        r.read_hits as f64 / r.reads as f64
                    } else {
                        1.0
                    },
                )
                .emit();
        }
    }

    bench::metrics::emit_if_requested(&args, "ycsb");
}
