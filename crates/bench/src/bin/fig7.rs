//! **Fig 7**: throughput and P99.9 tail latency under the five point-op
//! workloads (read-only → write-only) for all six indexes on the four
//! datasets.
//!
//! Paper shape: ALT-index leads or ties everywhere; the gap widens as the
//! write share grows; ALEX+'s P99.9 degrades on hard datasets; LIPP+
//! trails under writes.
//!
//! Parts a-e select the workload (a = read-only … e = write-only).

use bench::report::banner;
use bench::{Args, IndexKind, Row, Setup};
use workloads::{run_workload, DriverConfig, Mix};

fn main() {
    let args = Args::parse();
    banner(
        "fig7",
        &format!(
            "keys={}, threads={}, ops/thread={}, theta={}",
            args.keys, args.threads, args.ops, args.theta
        ),
    );
    let parts = ["a", "b", "c", "d", "e"];
    for (mix, part) in Mix::figure7().into_iter().zip(parts) {
        if !args.wants_part(part) {
            continue;
        }
        for &ds in &args.datasets {
            let setup = Setup::half(ds, args.keys, args.seed);
            for kind in IndexKind::COMPETITORS {
                if !args.wants_index(kind.name()) {
                    continue;
                }
                let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
                let plan = setup.plan(mix, args.theta, args.seed);
                let cfg = DriverConfig {
                    threads: args.threads,
                    ops_per_thread: args.ops,
                    latency_sample_every: 8,
                    batch: 0,
                };
                let r = run_workload(&idx, &plan, &cfg);
                Row::new(&format!("fig7{part}"))
                    .index(kind.name())
                    .dataset(ds.name())
                    .workload(mix.label())
                    .mops(r.mops)
                    .p999(r.p999_us)
                    .emit();
            }
        }
    }

    bench::metrics::emit_if_requested(&args, "fig7");
}
