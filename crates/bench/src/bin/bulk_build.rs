//! **bulk_build**: construction time and throughput across build thread
//! counts — the build-cost axis ("Benchmarking Learned Indexes" treats
//! build time as first-class; the paper's 200M-key runs are dominated by
//! it). Sweeps `--build-threads` (default: serial plus the host's
//! available parallelism) over every selected index and dataset, timing
//! `IndexKind::build_threaded` on the full generated key array.
//!
//! Rows report `build_ms` (best of `REPS` builds) with `Mops/s` as build
//! throughput (keys/s); when the sweep includes the serial baseline, a
//! `speedup_vs_serial` row is emitted per (index, dataset, threads)
//! point — `scripts/run_all_experiments.sh` collects the `#json` lines
//! into `results/BENCH_bulk_build.json`.
//!
//! Parallel builds are observably identical to serial ones by
//! construction (see `crates/alt-index/tests/build_equivalence.rs`), so
//! the sweep measures pure construction cost, not differing indexes; a
//! spot-check of lookups after each timed build guards the claim here.

use bench::report::{banner, Row};
use bench::Args;
use bench::IndexKind;
use datasets::generate_pairs;
use std::time::Instant;

/// Builds per (index, dataset, threads) point; best time wins (the
/// usual cold-allocator smoothing, matching the other bins' style).
const REPS: usize = 2;

fn main() {
    let args = Args::parse();
    let sweep = args.build_threads_sweep();
    banner(
        "bulk_build",
        &format!(
            "keys={}, build-threads sweep {:?}, seed={}",
            args.keys, sweep, args.seed
        ),
    );
    for ds in &args.datasets {
        let pairs = generate_pairs(*ds, args.keys, args.seed);
        for kind in IndexKind::COMPETITORS {
            if !args.wants_index(kind.name()) {
                continue;
            }
            let mut serial_ms: Option<f64> = None;
            for &t in &sweep {
                let mut best = f64::INFINITY;
                for _ in 0..REPS {
                    let start = Instant::now();
                    let idx = kind.build_threaded(&pairs, t);
                    let elapsed = start.elapsed().as_secs_f64() * 1e3;
                    best = best.min(elapsed);
                    // Keep the build honest: a broken parallel path must
                    // fail loudly, not clock a great time.
                    for &(k, v) in pairs.iter().step_by((pairs.len() / 64).max(1)) {
                        assert_eq!(idx.get(k), Some(v), "{} lost key {k}", kind.name());
                    }
                    assert_eq!(idx.len(), pairs.len(), "{} len", kind.name());
                    drop(idx);
                }
                if t == 1 {
                    serial_ms = Some(best);
                }
                Row::new("bulk_build")
                    .index(kind.name())
                    .dataset(ds.name())
                    .workload("bulk-load")
                    .x(t as f64)
                    .mops(args.keys as f64 / (best * 1e-3) / 1e6)
                    .value("build_ms", best)
                    .emit();
                if let (Some(serial), true) = (serial_ms, t != 1) {
                    Row::new("bulk_build")
                        .index(kind.name())
                        .dataset(ds.name())
                        .workload("bulk-load")
                        .x(t as f64)
                        .value("speedup_vs_serial", serial / best)
                        .emit();
                }
            }
        }
    }
}
