//! Serving-path throughput: the region router + async batched front-end
//! under an open-ended fan of simulated connections (DESIGN.md §17).
//!
//! Each *connection* is an async task on the shimmed tokio runtime that
//! issues zipfian point lookups back-to-back. Three serving modes are
//! measured at every connection count:
//!
//! * `direct`  — each connection calls `ConcurrentIndex::get` in a loop
//!   (no front-end; the zero-overhead reference),
//! * `perkey`  — every request goes through a [`region::BatchServer`]
//!   with `ring_width = 1`, i.e. classic request-at-a-time serving with
//!   the front-end's queue/completion machinery,
//! * `batched` — the same front-end with a real ring width, so
//!   concurrent in-flight requests accumulate into AMAC `get_batch`
//!   rings (one submission queue per region shard).
//!
//! `batched` vs `perkey` therefore isolates what batching buys on the
//! serving path; `direct` shows the front-end's intrinsic overhead.
//! Rows record throughput of *served* requests, sampled P99.9 latency,
//! and the shed rate (admission control rejects rather than queueing
//! unboundedly once `--max-depth` requests are in flight). A final
//! `saturation_mops` row per mode reports the best throughput over the
//! connection sweep, plus a `batched_vs_perkey` speedup row.
//!
//! ```sh
//! cargo run --release -p bench --bin service_throughput -- \
//!     --keys 2m --threads 8 --ops 20k --datasets fb \
//!     --connections 8,64,512 --shards 4 --ring 32
//! ```

use alt_index::AltIndex;
use bench::report::banner;
use bench::{Args, Row, Setup};
use datasets::rng::SplitMix64;
use index_api::ConcurrentIndex;
use region::{BatchServer, RegionConfig, RegionIndex, ServeConfig, ServeError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::{LatencyHistogram, Zipf};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Direct,
    PerKey,
    Batched,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Direct => "direct",
            Mode::PerKey => "perkey",
            Mode::Batched => "batched",
        }
    }
}

/// Outcome of one mode × connection-count measurement.
struct Measured {
    mops: f64,
    p999_us: f64,
    shed_rate: f64,
    /// Mean `get_batch` ring occupancy (1.0 in per-key/direct modes).
    avg_batch: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_mode(
    index: &Arc<dyn ConcurrentIndex>,
    loaded: &Arc<Vec<u64>>,
    mode: Mode,
    conns: usize,
    reqs_per_conn: usize,
    workers: usize,
    ring: usize,
    max_depth: usize,
    burst: usize,
    theta: f64,
    seed: u64,
) -> Measured {
    let server = match mode {
        Mode::Direct => None,
        Mode::PerKey | Mode::Batched => Some(Arc::new(BatchServer::new(
            Arc::clone(index),
            ServeConfig {
                ring_width: if mode == Mode::Batched { ring } else { 1 },
                max_depth,
                flush_interval: Duration::from_micros(100),
            },
        ))),
    };
    let rt = Arc::new(
        tokio::runtime::Builder::new_multi_thread()
            .worker_threads(workers)
            .build()
            .expect("runtime"),
    );
    // One shared sampler: `Zipf::new` precomputes a zeta sum over the
    // whole key count, far too expensive to redo per connection.
    let zipf = Arc::new(Zipf::new(loaded.len().max(1) as u64, theta));
    let start = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let index = Arc::clone(index);
            let server = server.clone();
            let loaded = Arc::clone(loaded);
            let zipf = Arc::clone(&zipf);
            let rt2 = Arc::clone(&rt);
            rt.spawn(async move {
                let mut rng =
                    SplitMix64::new(seed ^ (c as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
                let key_at = |rng: &mut SplitMix64| {
                    let rank = zipf.sample(rng) as usize;
                    loaded[rank.wrapping_mul(0x9E37_79B9) % loaded.len()]
                };
                let mut hist = LatencyHistogram::new();
                let (mut served, mut shed) = (0u64, 0u64);
                if burst > 1 {
                    // Open-loop bursts: fire a window of requests as
                    // concurrent tasks, then collect — demand is not
                    // throttled by individual completions, so admission
                    // control genuinely engages under overload.
                    let srv = server.expect("burst mode requires the serving front-end");
                    for _ in 0..reqs_per_conn.div_ceil(burst) {
                        let reqs: Vec<_> = (0..burst)
                            .map(|_| {
                                let srv = Arc::clone(&srv);
                                let key = key_at(&mut rng);
                                rt2.spawn(async move {
                                    let t0 = Instant::now();
                                    (srv.get(key).await, t0.elapsed())
                                })
                            })
                            .collect();
                        for h in reqs {
                            let (res, lat) = h.await.expect("request task");
                            match res {
                                Ok(_) => {
                                    served += 1;
                                    hist.record(lat.as_nanos() as u64);
                                }
                                Err(ServeError::Overloaded) => shed += 1,
                                Err(ServeError::Shutdown) => panic!("server shut down mid-run"),
                            }
                        }
                    }
                } else {
                    // Closed loop: one request at a time per connection.
                    for i in 0..reqs_per_conn {
                        let key = key_at(&mut rng);
                        let sample = i % 8 == 0;
                        let t0 = sample.then(Instant::now);
                        let ok = match &server {
                            None => {
                                let _ = index.get(key);
                                true
                            }
                            Some(srv) => match srv.get(key).await {
                                Ok(_) => true,
                                Err(ServeError::Overloaded) => false,
                                Err(ServeError::Shutdown) => panic!("server shut down mid-run"),
                            },
                        };
                        if ok {
                            served += 1;
                            if let Some(t0) = t0 {
                                hist.record(t0.elapsed().as_nanos() as u64);
                            }
                        } else {
                            shed += 1;
                        }
                    }
                }
                (hist, served, shed)
            })
        })
        .collect();
    let (mut all, mut served, mut shed) = (LatencyHistogram::new(), 0u64, 0u64);
    rt.block_on(async {
        for h in handles {
            let (hist, s, d) = h.await.expect("connection task");
            all.merge(&hist);
            served += s;
            shed += d;
        }
    });
    let secs = start.elapsed().as_secs_f64();
    drop(rt);
    let avg_batch = match &server {
        Some(srv) => {
            let st = srv.stats();
            st.batched_keys as f64 / st.flushes.max(1) as f64
        }
        None => 1.0,
    };
    drop(server);
    Measured {
        mops: served as f64 / secs / 1e6,
        p999_us: all.quantile(0.999) as f64 / 1_000.0,
        shed_rate: shed as f64 / (served + shed).max(1) as f64,
        avg_batch,
    }
}

fn main() {
    // Split off the sweep flags before the common parser.
    let mut connections: Vec<usize> = vec![4, 32, 256];
    let mut shards = 4usize;
    let mut ring = 32usize;
    let mut max_depth = 4096usize;
    let mut burst = 1usize;
    let mut rest = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        let mut val = |flag: &str| {
            argv.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match a.as_str() {
            "--connections" => {
                connections = val("--connections")
                    .split(',')
                    .map(|s| s.parse().expect("--connections list"))
                    .collect();
            }
            "--shards" => shards = val("--shards").parse().expect("--shards"),
            "--ring" => ring = val("--ring").parse().expect("--ring"),
            "--max-depth" => max_depth = val("--max-depth").parse().expect("--max-depth"),
            "--burst" => burst = val("--burst").parse().expect("--burst"),
            _ => rest.push(a),
        }
    }
    assert!(burst >= 1, "--burst must be at least 1");
    let args = Args::parse_from(rest);
    banner(
        "service_throughput",
        &format!(
            "keys={} threads={} reqs/conn={} connections={connections:?} shards={shards} ring={ring} max_depth={max_depth} burst={burst}",
            args.keys, args.threads, args.ops
        ),
    );

    for &ds in &args.datasets {
        let setup = Setup::half(ds, args.keys, args.seed);
        let region = RegionIndex::<AltIndex>::bulk_load_with(
            &setup.bulk,
            RegionConfig {
                initial_shards: shards,
                construction_threads: args.construction_threads(),
                ..RegionConfig::default()
            },
        );
        assert_eq!(region.shard_count(), shards.clamp(1, 64));
        let index: Arc<dyn ConcurrentIndex> = Arc::new(region);
        let loaded = Arc::new(setup.loaded_keys());

        let modes = [Mode::Direct, Mode::PerKey, Mode::Batched];
        let mut best = [0.0f64; 3];
        for &conns in &connections {
            for (mi, &mode) in modes.iter().enumerate() {
                // Open-loop bursts only make sense through the front-end.
                let mode_burst = if mode == Mode::Direct { 1 } else { burst };
                let m = run_mode(
                    &index,
                    &loaded,
                    mode,
                    conns,
                    args.ops,
                    args.threads,
                    ring,
                    max_depth,
                    mode_burst,
                    args.theta,
                    args.seed,
                );
                best[mi] = best[mi].max(m.mops);
                Row::new("service_throughput")
                    .index("ALT-region")
                    .dataset(ds.name())
                    .workload(&format!("{}+shards{shards}", mode.label()))
                    .x(conns as f64)
                    .mops(m.mops)
                    .p999(m.p999_us)
                    .value("shed_rate", m.shed_rate)
                    .emit();
                if mode == Mode::Batched {
                    Row::new("service_throughput")
                        .index("ALT-region")
                        .dataset(ds.name())
                        .workload(&format!("{}+shards{shards}", mode.label()))
                        .x(conns as f64)
                        .value("avg_batch", m.avg_batch)
                        .emit();
                }
            }
        }
        // Saturation summary: best served throughput over the sweep.
        for (mi, &mode) in modes.iter().enumerate() {
            Row::new("service_throughput")
                .index("ALT-region")
                .dataset(ds.name())
                .workload(&format!("{}+shards{shards}", mode.label()))
                .mops(best[mi])
                .value("saturation_mops", best[mi])
                .emit();
        }
        Row::new("service_throughput")
            .index("ALT-region")
            .dataset(ds.name())
            .workload(&format!("batched+shards{shards}"))
            .value(
                "batched_vs_perkey",
                best[2] / best[1].max(f64::MIN_POSITIVE),
            )
            .emit();
    }

    bench::metrics::emit_if_requested(&args, "service_throughput");
}
