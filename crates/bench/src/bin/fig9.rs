//! **Fig 9**: scalability — balanced workload, thread count swept
//! 1→32, all indexes, all datasets.
//!
//! Paper shape: ALT-index scales best; LIPP+ plateaus early (statistics
//! counters); ALEX+'s 16→32 step flattens (write amplification);
//! FINEdex/XIndex scale but from a lower base (prediction error).
//!
//! Note: on hosts with fewer cores than the sweep, points beyond the core
//! count measure oversubscription rather than parallel speed-up; the
//! relative ordering still reflects structural contention.

use bench::report::banner;
use bench::{Args, IndexKind, Row, Setup};
use workloads::{run_workload, DriverConfig, Mix};

fn main() {
    let args = Args::parse();
    banner(
        "fig9",
        &format!("keys={}, ops/thread={}, balanced", args.keys, args.ops),
    );
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sweep: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&t| t <= args.threads.max(1) * 8 && t <= 32)
        .collect();
    println!("# host parallelism = {host}");
    for &ds in &args.datasets {
        let setup = Setup::half(ds, args.keys, args.seed);
        for kind in IndexKind::COMPETITORS {
            if !args.wants_index(kind.name()) {
                continue;
            }
            for &threads in &sweep {
                let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
                let plan = setup.plan(Mix::BALANCED, args.theta, args.seed);
                let cfg = DriverConfig {
                    threads,
                    // Keep total work roughly constant across the sweep.
                    ops_per_thread: (args.ops * 4 / threads).max(10_000),
                    latency_sample_every: 16,
                    batch: 0,
                };
                let r = run_workload(&idx, &plan, &cfg);
                Row::new("fig9")
                    .index(kind.name())
                    .dataset(ds.name())
                    .workload("balanced")
                    .x(threads as f64)
                    .mops(r.mops)
                    .emit();
            }
        }
    }

    bench::metrics::emit_if_requested(&args, "fig9");
}
