//! **Fig 10**: inside analysis of ALT-index.
//!
//! * (a) average ART lookup length with vs without the fast pointer
//!   buffer (shorter with);
//! * (b) fast pointer count with vs without the merge scheme (far fewer
//!   with);
//! * (c) data share of the learned layer vs ART per dataset (>50%
//!   learned on real-world-like data, >80% on libio);
//! * (d) bulk-load time of ALT-index vs ALEX+ vs LIPP+ (ALT fastest).

use alt_index::AltIndex;
use baselines::{AlexLike, LippLike};
use bench::report::banner;
use bench::{Args, Row, Setup};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    banner("fig10", &format!("keys={}", args.keys));

    for &ds in &args.datasets {
        let setup = Setup::half(ds, args.keys, args.seed);

        if args.wants_part("a") || args.wants_part("b") || args.wants_part("c") {
            let idx = AltIndex::bulk_load_default(&setup.bulk);
            // Insert the reserve so ART carries runtime conflict data too.
            for &k in &setup.reserve {
                let _ = idx.insert(k, k ^ 0x5555);
            }
            let stats = idx.stats();

            if args.wants_part("a") {
                // Probe ART residents: average hops via the fast pointer
                // vs from the root.
                let mut jump_sum = 0u64;
                let mut root_sum = 0u64;
                let mut n = 0u64;
                for &k in setup.reserve.iter().step_by(7) {
                    if let Some(p) = idx.probe_art_hops(k) {
                        if let Some(j) = p.jump_hops {
                            jump_sum += j as u64;
                            root_sum += p.root_hops as u64;
                            n += 1;
                        }
                    }
                    if n >= 50_000 {
                        break;
                    }
                }
                if n > 0 {
                    Row::new("fig10a")
                        .index("with-fast-ptr")
                        .dataset(ds.name())
                        .value("avg_lookup_len", jump_sum as f64 / n as f64)
                        .emit();
                    Row::new("fig10a")
                        .index("without")
                        .dataset(ds.name())
                        .value("avg_lookup_len", root_sum as f64 / n as f64)
                        .emit();
                } else {
                    println!("# fig10a {}: no ART residents to probe", ds.name());
                }
            }

            if args.wants_part("b") {
                Row::new("fig10b")
                    .index("with-merge")
                    .dataset(ds.name())
                    .value("fast_pointers", stats.fast_pointers as f64)
                    .emit();
                Row::new("fig10b")
                    .index("without")
                    .dataset(ds.name())
                    .value("fast_pointers", stats.fast_pointers_unmerged as f64)
                    .emit();
            }

            if args.wants_part("c") {
                Row::new("fig10c")
                    .index("ALT-index")
                    .dataset(ds.name())
                    .value("learned_share", stats.learned_share())
                    .emit();
                Row::new("fig10c")
                    .index("ALT-index")
                    .dataset(ds.name())
                    .value("keys_in_art", stats.keys_in_art as f64)
                    .emit();
            }
        }

        if args.wants_part("d") {
            let t0 = Instant::now();
            let _alt = AltIndex::bulk_load_default(&setup.bulk);
            let alt_s = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let _alex = AlexLike::build(&setup.bulk);
            let alex_s = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let _lipp = LippLike::build(&setup.bulk);
            let lipp_s = t0.elapsed().as_secs_f64();
            for (name, s) in [("ALT-index", alt_s), ("ALEX+", alex_s), ("LIPP+", lipp_s)] {
                Row::new("fig10d")
                    .index(name)
                    .dataset(ds.name())
                    .value("bulkload_s", s)
                    .emit();
            }
        }
    }

    bench::metrics::emit_if_requested(&args, "fig10");
}
