//! **batch_lookup**: single-thread read throughput of `get_batch` across
//! batch widths — the memory-level-parallelism axis. Point lookups on a
//! learned index are dominated by cache misses (directory line, slot
//! line, ART nodes); the AMAC engines overlap those misses across a ring
//! of in-flight keys, so throughput should climb with width until the
//! ring covers the load-to-use latency and then flatten.
//!
//! Sweeps `--batch-width` (default {1, 8, 16, 32, 64}; width 1 is the
//! scalar `get` loop, the baseline) over every selected index and
//! dataset, and reruns the whole width sweep under each `--simd`
//! kill-switch position (default {off, on}) so the vectorized child
//! search / grouped predict can be compared against the per-byte scalar
//! kernels on the same stream (`speedup_simd` rows, emitted on the
//! simd-on pass per width measured in both positions). The lookup
//! stream is a deterministic shuffle of loaded and absent keys (90/10),
//! the same stream for every width, so rows are directly comparable.
//! When the sweep includes width 1, a `speedup_vs_width1` row is
//! emitted per wider point — `scripts/run_all_experiments.sh` collects
//! the `#json` lines into `results/BENCH_batch_lookup.json`.

use bench::report::{banner, Row};
use bench::Args;
use bench::IndexKind;
use bench::Setup;
use std::hint::black_box;
use std::time::Instant;

/// Timed passes per (index, dataset, width, simd-mode) point; best time
/// wins (5, up from 2, after a recorded run where two consecutive
/// points caught host interference in both passes — construction
/// dominates the run, so extra passes are nearly free).
const REPS: usize = 5;

/// Deterministic lookup stream: a splitmix-shuffled mix of loaded keys
/// (90%) and reserved — i.e. absent — keys (10%), `ops` entries long.
fn lookup_stream(setup: &Setup, ops: usize, seed: u64) -> Vec<u64> {
    let loaded = setup.loaded_keys();
    let mut state = seed | 1;
    let mut rng = move || {
        // splitmix64: deterministic, no RNG dependency.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..ops)
        .map(|_| {
            let r = rng();
            if r % 10 == 0 && !setup.reserve.is_empty() {
                setup.reserve[(r / 10) as usize % setup.reserve.len()]
            } else {
                loaded[(r / 10) as usize % loaded.len()]
            }
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let sweep = args.batch_width_sweep();
    let modes = args.simd_mode_sweep();
    banner(
        "batch_lookup",
        &format!(
            "keys={}, ops={}, batch-width sweep {:?}, simd sweep {:?}, seed={}",
            args.keys,
            args.ops,
            sweep,
            modes
                .iter()
                .map(|&m| if m { "on" } else { "off" })
                .collect::<Vec<_>>(),
            args.seed
        ),
    );
    if simd::SCALAR_BUILD {
        println!("note: force-scalar build — both simd positions run the scalar kernels");
    }
    for ds in &args.datasets {
        let setup = Setup::half(*ds, args.keys, args.seed);
        let stream = lookup_stream(&setup, args.ops, args.seed ^ 0xBA7C);
        for kind in IndexKind::COMPETITORS {
            if !args.wants_index(kind.name()) {
                continue;
            }
            let idx = kind.build_threaded(&setup.bulk, args.construction_threads());
            // Reference results from the scalar path, used both to keep
            // the batched runs honest and to avoid dead-code elimination.
            let expect_hits: usize = stream.iter().filter(|&&k| idx.get(k).is_some()).count();
            // Per-mode width-1 baselines for the speedup_vs_width1 rows.
            let mut width1_mops = vec![None::<f64>; modes.len()];
            for &w in &sweep {
                // The simd positions are interleaved *inside* the rep
                // loop so the off/on pair for a width is measured
                // back-to-back — minutes of drift between two separate
                // sweeps would otherwise swamp the kernel difference on
                // a busy host.
                let mut best = vec![f64::INFINITY; modes.len()];
                for _ in 0..REPS {
                    for (mi, &simd_on) in modes.iter().enumerate() {
                        simd::set_enabled(simd_on);
                        let mut hits = 0usize;
                        let mut out = vec![None; w];
                        let start = Instant::now();
                        if w == 1 {
                            for &k in &stream {
                                hits += usize::from(black_box(idx.get(k)).is_some());
                            }
                        } else {
                            for chunk in stream.chunks(w) {
                                idx.get_batch(chunk, &mut out[..chunk.len()]);
                                hits += black_box(&out[..chunk.len()])
                                    .iter()
                                    .filter(|o| o.is_some())
                                    .count();
                            }
                        }
                        let elapsed = start.elapsed().as_secs_f64();
                        assert_eq!(
                            hits,
                            expect_hits,
                            "{} width {w} simd {simd_on}: batched hit count diverged from scalar",
                            kind.name()
                        );
                        best[mi] = best[mi].min(elapsed);
                    }
                }
                for (mi, &simd_on) in modes.iter().enumerate() {
                    let mops = stream.len() as f64 / best[mi] / 1e6;
                    if w == 1 {
                        width1_mops[mi] = Some(mops);
                    }
                    Row::new("batch_lookup")
                        .index(kind.name())
                        .dataset(ds.name())
                        .workload("read-only")
                        .x(w as f64)
                        .mops(mops)
                        .value("elapsed_ms", best[mi] * 1e3)
                        .simd(simd_on)
                        .emit();
                    if let (Some(base), true) = (width1_mops[mi], w != 1) {
                        Row::new("batch_lookup")
                            .index(kind.name())
                            .dataset(ds.name())
                            .workload("read-only")
                            .x(w as f64)
                            .value("speedup_vs_width1", mops / base)
                            .simd(simd_on)
                            .emit();
                    }
                    if simd_on {
                        if let Some(base_mi) = modes.iter().position(|&m| !m) {
                            Row::new("batch_lookup")
                                .index(kind.name())
                                .dataset(ds.name())
                                .workload("read-only")
                                .x(w as f64)
                                .value("speedup_simd", best[base_mi] / best[mi])
                                .simd(true)
                                .emit();
                        }
                    }
                }
            }
            simd::set_enabled(true);
            drop(idx);
        }
    }
    bench::metrics::emit_if_requested(&args, "batch_lookup");
}
