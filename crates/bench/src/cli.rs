//! A tiny flag parser for the experiment binaries (keeps the workspace
//! free of a CLI dependency).

use datasets::Dataset;

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct Args {
    /// Total dataset size (the evaluation bulk-loads 50% of it unless an
    /// experiment says otherwise).
    pub keys: usize,
    /// Worker threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops: usize,
    /// Datasets to run.
    pub datasets: Vec<Dataset>,
    /// Sub-figure selector (`a`..`e`), empty = all.
    pub part: String,
    /// Zipfian skew for reads.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Restrict to these index names (empty = all).
    pub indexes: Vec<String>,
    /// Append hot-path metrics counters to the report (needs the crate's
    /// `metrics` feature; see [`crate::metrics`]).
    pub metrics: bool,
    /// Install a schedule-perturbing chaos run with this seed (needs the
    /// crate's `chaos` feature; see [`crate::chaos`]).
    pub chaos_seed: Option<u64>,
    /// Construction thread counts (`--build-threads 1,2,8`). The
    /// bulk_build experiment sweeps all of them; every other bin uses the
    /// first entry for its one-off index construction. Empty = serial
    /// plus the host's available parallelism (bulk_build) / available
    /// parallelism (other bins).
    pub build_threads: Vec<usize>,
    /// Batch widths (`--batch-width 1,8,32`). The batch_lookup
    /// experiment sweeps all of them; empty = the default
    /// {1, 8, 16, 32, 64} sweep. Width 1 is the scalar baseline.
    pub batch_widths: Vec<usize>,
    /// SIMD kill-switch positions to sweep (`--simd on`, `--simd off`,
    /// `--simd off,on`). The batch_lookup experiment reruns its width
    /// sweep under each position via `simd::set_enabled`; empty = the
    /// default {off, on} so every report carries a scalar baseline next
    /// to the vectorized rows. On force-scalar builds both positions run
    /// the same kernels (the rows then document that fact).
    pub simd_modes: Vec<bool>,
    /// Time-bucket width in milliseconds for throughput-over-time
    /// curves (the retrain_shift experiment).
    pub bucket_ms: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            keys: 2_000_000,
            threads: default_threads(),
            ops: 200_000,
            datasets: datasets::ALL_DATASETS.to_vec(),
            part: String::new(),
            theta: 0.99,
            seed: 42,
            indexes: Vec::new(),
            metrics: false,
            chaos_seed: None,
            build_threads: Vec::new(),
            batch_widths: Vec::new(),
            simd_modes: Vec::new(),
            bucket_ms: 50,
        }
    }
}

/// The paper uses 32 threads; default to what the host can actually run.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(32))
        .unwrap_or(4)
}

/// Default construction thread count (uncapped — bulk load scales past
/// the workload harness's 32-thread ceiling).
pub fn default_build_threads() -> usize {
    alt_index::default_build_threads()
}

impl Args {
    /// Parse `std::env::args()`, panicking with usage on bad input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse an explicit argument iterator.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut val = || {
                it.next()
                    .unwrap_or_else(|| panic!("flag {flag} expects a value"))
            };
            match flag.as_str() {
                "--keys" => out.keys = parse_human(&val()),
                "--threads" => out.threads = val().parse().expect("--threads"),
                "--ops" => out.ops = parse_human(&val()),
                "--part" => out.part = val().to_ascii_lowercase(),
                "--theta" => out.theta = val().parse().expect("--theta"),
                "--seed" => out.seed = val().parse().expect("--seed"),
                "--datasets" => {
                    out.datasets = val()
                        .split(',')
                        .map(|s| Dataset::parse(s).unwrap_or_else(|| panic!("unknown dataset {s}")))
                        .collect();
                }
                "--indexes" => {
                    out.indexes = val().split(',').map(|s| s.to_string()).collect();
                }
                "--metrics" => out.metrics = true,
                "--chaos-seed" => out.chaos_seed = Some(val().parse().expect("--chaos-seed")),
                "--build-threads" => {
                    out.build_threads = val()
                        .split(',')
                        .map(|s| {
                            let t: usize = s.parse().expect("--build-threads");
                            assert!(t >= 1, "--build-threads entries must be >= 1");
                            t
                        })
                        .collect();
                }
                "--bucket-ms" => {
                    out.bucket_ms = val().parse().expect("--bucket-ms");
                    assert!(out.bucket_ms >= 1, "--bucket-ms must be >= 1");
                }
                "--batch-width" => {
                    out.batch_widths = val()
                        .split(',')
                        .map(|s| {
                            let w: usize = s.parse().expect("--batch-width");
                            assert!(w >= 1, "--batch-width entries must be >= 1");
                            w
                        })
                        .collect();
                }
                "--simd" => {
                    out.simd_modes = val()
                        .split(',')
                        .map(|s| match s {
                            "on" => true,
                            "off" => false,
                            other => panic!("--simd entries must be on|off, got {other}"),
                        })
                        .collect();
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --keys N --threads N --ops N --datasets a,b \
                         --part a|b|c|d|e --theta F --seed N --indexes x,y \
                         --metrics --chaos-seed N --build-threads 1,2,8 \
                         --batch-width 1,8,32 --simd off,on --bucket-ms N"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other} (try --help)"),
            }
        }
        out
    }

    /// The construction thread count for bins that build each index once
    /// (everything except bulk_build, which sweeps
    /// [`Args::build_threads_sweep`]): first `--build-threads` entry, or
    /// the host's available parallelism.
    pub fn construction_threads(&self) -> usize {
        self.build_threads
            .first()
            .copied()
            .unwrap_or_else(default_build_threads)
    }

    /// The thread counts the bulk_build experiment sweeps: the
    /// `--build-threads` list as given, or serial plus the host's
    /// available parallelism.
    pub fn build_threads_sweep(&self) -> Vec<usize> {
        if self.build_threads.is_empty() {
            let host = default_build_threads();
            if host > 1 {
                vec![1, host]
            } else {
                vec![1]
            }
        } else {
            self.build_threads.clone()
        }
    }

    /// The batch widths the batch_lookup experiment sweeps: the
    /// `--batch-width` list as given, or the default
    /// {1, 8, 16, 32, 64}.
    pub fn batch_width_sweep(&self) -> Vec<usize> {
        if self.batch_widths.is_empty() {
            vec![1, 8, 16, 32, 64]
        } else {
            self.batch_widths.clone()
        }
    }

    /// The SIMD kill-switch positions the batch_lookup experiment
    /// sweeps: the `--simd` list as given, or {off, on} (scalar baseline
    /// first so the vectorized pass can report `speedup_simd` against
    /// it).
    pub fn simd_mode_sweep(&self) -> Vec<bool> {
        if self.simd_modes.is_empty() {
            vec![false, true]
        } else {
            self.simd_modes.clone()
        }
    }

    /// Whether sub-part `p` was selected (empty selector = run all).
    pub fn wants_part(&self, p: &str) -> bool {
        self.part.is_empty() || self.part == p
    }

    /// Whether index `name` was selected (empty selector = all).
    pub fn wants_index(&self, name: &str) -> bool {
        self.indexes.is_empty() || self.indexes.iter().any(|i| i.eq_ignore_ascii_case(name))
    }
}

/// Parse `2000000`, `2_000_000`, `2m`, `500k`.
pub fn parse_human(s: &str) -> usize {
    let s = s.replace('_', "").to_ascii_lowercase();
    let (num, mult) = if let Some(p) = s.strip_suffix('m') {
        (p.to_string(), 1_000_000)
    } else if let Some(p) = s.strip_suffix('k') {
        (p.to_string(), 1_000)
    } else {
        (s, 1)
    };
    let f: f64 = num.parse().expect("numeric size");
    (f * mult as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse_from(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_sane() {
        let a = parse(&[]);
        assert_eq!(a.keys, 2_000_000);
        assert_eq!(a.datasets.len(), 4);
        assert!(a.wants_part("a"));
        assert!(a.wants_index("ALT-index"));
    }

    #[test]
    fn parses_flags() {
        let a = parse(&[
            "--keys",
            "500k",
            "--threads",
            "8",
            "--part",
            "B",
            "--datasets",
            "osm,fb",
            "--indexes",
            "alt-index,art",
            "--metrics",
        ]);
        assert_eq!(a.keys, 500_000);
        assert_eq!(a.threads, 8);
        assert!(a.wants_part("b"));
        assert!(!a.wants_part("a"));
        assert_eq!(a.datasets, vec![Dataset::Osm, Dataset::Fb]);
        assert!(a.wants_index("ART"));
        assert!(!a.wants_index("XIndex"));
        assert!(a.metrics);
        assert!(!parse(&[]).metrics, "off by default");
    }

    #[test]
    fn build_threads_flag_and_sweeps() {
        let a = parse(&["--build-threads", "1,2,8"]);
        assert_eq!(a.build_threads, vec![1, 2, 8]);
        assert_eq!(a.construction_threads(), 1);
        assert_eq!(a.build_threads_sweep(), vec![1, 2, 8]);

        let d = parse(&[]);
        assert!(d.build_threads.is_empty());
        assert_eq!(d.construction_threads(), default_build_threads());
        let sweep = d.build_threads_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.len() <= 2);
    }

    #[test]
    fn batch_width_flag_and_sweeps() {
        let a = parse(&["--batch-width", "1,8,32"]);
        assert_eq!(a.batch_widths, vec![1, 8, 32]);
        assert_eq!(a.batch_width_sweep(), vec![1, 8, 32]);

        let d = parse(&[]);
        assert!(d.batch_widths.is_empty());
        assert_eq!(d.batch_width_sweep(), vec![1, 8, 16, 32, 64]);
    }

    #[test]
    fn simd_flag_and_sweeps() {
        let a = parse(&["--simd", "on"]);
        assert_eq!(a.simd_modes, vec![true]);
        assert_eq!(a.simd_mode_sweep(), vec![true]);
        assert_eq!(
            parse(&["--simd", "off,on"]).simd_mode_sweep(),
            vec![false, true]
        );

        let d = parse(&[]);
        assert!(d.simd_modes.is_empty());
        assert_eq!(
            d.simd_mode_sweep(),
            vec![false, true],
            "scalar baseline first"
        );
    }

    #[test]
    fn bucket_ms_flag() {
        assert_eq!(parse(&[]).bucket_ms, 50);
        assert_eq!(parse(&["--bucket-ms", "10"]).bucket_ms, 10);
    }

    #[test]
    fn human_sizes() {
        assert_eq!(parse_human("2m"), 2_000_000);
        assert_eq!(parse_human("1.5M"), 1_500_000);
        assert_eq!(parse_human("250k"), 250_000);
        assert_eq!(parse_human("1_000"), 1_000);
    }
}
