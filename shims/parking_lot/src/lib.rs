//! Hermetic shim for `parking_lot`: the non-poisoning `Mutex`, `RwLock`,
//! and `Condvar` API this workspace uses, implemented over `std::sync`.
//! Poisoned locks are recovered transparently (`parking_lot` has no
//! poisoning at all, so this matches its semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquire shared access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable whose `wait` takes `&mut MutexGuard` (the
/// parking_lot calling convention).
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1, *r2), (5, 5));
            assert!(l.try_write().is_none());
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
