//! Hermetic shim for `crossbeam-epoch`: a small, self-contained
//! epoch-based reclamation scheme exposing exactly the API surface this
//! workspace uses (`pin`, `unprotected`, `Atomic`, `Owned`, `Shared`,
//! `Guard::{defer_destroy, defer_unchecked}`).
//!
//! The scheme is the classic three-epoch design:
//!
//! * A global epoch counter advances only when every currently-pinned
//!   participant has observed the current epoch.
//! * Garbage is tagged with the epoch at retirement and freed once the
//!   global epoch is at least two ahead — at that point every guard that
//!   could have loaded the retired pointer has been dropped.
//!
//! Pinning is wait-free (two SeqCst stores plus a re-check loop);
//! retirement and collection go through a mutex, which is fine because
//! retirement only happens on structural changes (directory swaps, node
//! replacements), never on point-op fast paths.

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel epoch meaning "not pinned".
const IDLE: usize = usize::MAX;
/// Collect at most every this many unpins per thread.
const COLLECT_EVERY: usize = 64;

static GLOBAL_EPOCH: AtomicUsize = AtomicUsize::new(0);

struct Participant {
    epoch: AtomicUsize,
}

/// A retired object awaiting reclamation. The closure captures raw
/// pointers; `Send` is asserted by the `defer_unchecked` safety contract.
struct Deferred {
    epoch: usize,
    call: Box<dyn FnOnce()>,
}

unsafe impl Send for Deferred {}

fn registry() -> &'static Mutex<Vec<Arc<Participant>>> {
    static R: OnceLock<Mutex<Vec<Arc<Participant>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

fn garbage() -> &'static Mutex<VecDeque<Deferred>> {
    static G: OnceLock<Mutex<VecDeque<Deferred>>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(VecDeque::new()))
}

struct LocalHandle {
    participant: Arc<Participant>,
    pin_depth: Cell<usize>,
    unpins: Cell<usize>,
}

impl LocalHandle {
    fn new() -> Self {
        let participant = Arc::new(Participant {
            epoch: AtomicUsize::new(IDLE),
        });
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&participant));
        Self {
            participant,
            pin_depth: Cell::new(0),
            unpins: Cell::new(0),
        }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static LOCAL: LocalHandle = LocalHandle::new();
}

/// Try to advance the global epoch and run every deferred destructor that
/// is at least two epochs old. `try_lock` keeps collection off the pin
/// fast path under contention.
fn try_collect() {
    let Ok(mut bin) = garbage().try_lock() else {
        return;
    };
    {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let current = GLOBAL_EPOCH.load(Ordering::SeqCst);
        let all_current = reg.iter().all(|p| {
            let e = p.epoch.load(Ordering::SeqCst);
            e == IDLE || e == current
        });
        if all_current {
            GLOBAL_EPOCH.store(current + 1, Ordering::SeqCst);
        }
    }
    let current = GLOBAL_EPOCH.load(Ordering::SeqCst);
    let mut ready = Vec::new();
    while let Some(front) = bin.front() {
        if front.epoch + 2 <= current {
            ready.push(bin.pop_front().unwrap());
        } else {
            break;
        }
    }
    drop(bin);
    for d in ready {
        (d.call)();
    }
}

fn retire(call: Box<dyn FnOnce()>) {
    let epoch = GLOBAL_EPOCH.load(Ordering::SeqCst);
    garbage()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push_back(Deferred { epoch, call });
}

/// A handle that keeps the current epoch pinned; loaded [`Shared`]
/// pointers stay valid until it drops.
pub struct Guard {
    pinned: bool,
    _not_send: PhantomData<*mut ()>,
}

// `&Guard` escapes through `unprotected()`'s `'static` reference; sharing
// a reference across threads is harmless because every `&self` method
// only touches global synchronized state. The type stays `!Send` so the
// thread-local pin bookkeeping in `Drop` runs on the pinning thread.
unsafe impl Sync for Guard {}

/// Pin the current epoch. Pins nest; the thread unpins when the last
/// guard drops.
pub fn pin() -> Guard {
    LOCAL.with(|l| {
        if l.pin_depth.get() == 0 {
            loop {
                let g = GLOBAL_EPOCH.load(Ordering::SeqCst);
                l.participant.epoch.store(g, Ordering::SeqCst);
                // Re-check: if the collector advanced concurrently it may
                // not have seen our store; retry with the fresh epoch so
                // the published value is never stale.
                if GLOBAL_EPOCH.load(Ordering::SeqCst) == g {
                    break;
                }
            }
        }
        l.pin_depth.set(l.pin_depth.get() + 1);
    });
    Guard {
        pinned: true,
        _not_send: PhantomData,
    }
}

/// A guard that performs no pinning: deferred functions run immediately.
///
/// # Safety
///
/// The caller must guarantee no other thread can concurrently access the
/// data structures touched through this guard (e.g. inside `Drop` with
/// `&mut self`).
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard {
        pinned: false,
        _not_send: PhantomData,
    };
    &UNPROTECTED
}

impl Guard {
    /// Defer dropping the boxed object behind `ptr` until no pinned guard
    /// can still reference it.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Owned::new`/`Atomic::new`, be unlinked from
    /// every shared location, and never be retired twice.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        // Erase `T` behind `*mut u8` + a monomorphized drop-glue pointer,
        // so the deferred closure captures only `'static` data even when
        // `T` itself is not `'static` (matches upstream's contract).
        unsafe fn drop_glue<T>(raw: *mut u8) {
            drop(Box::from_raw(raw.cast::<T>()));
        }
        let raw = ptr.raw.cast::<u8>();
        let glue: unsafe fn(*mut u8) = drop_glue::<T>;
        self.defer_unchecked(move || {
            if !raw.is_null() {
                glue(raw);
            }
        });
    }

    /// Defer an arbitrary closure until two epochs from now.
    ///
    /// # Safety
    ///
    /// The closure must remain sound to call from any thread after every
    /// current guard drops (same contract as crossbeam's).
    pub unsafe fn defer_unchecked<F: FnOnce() + 'static>(&self, f: F) {
        if self.pinned {
            retire(Box::new(f));
        } else {
            f();
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.pinned {
            return;
        }
        // `try_with`: a guard dropped during thread teardown (after TLS
        // destruction) simply skips unpin bookkeeping — its participant
        // entry is already gone from the registry.
        let _ = LOCAL.try_with(|l| {
            let depth = l.pin_depth.get();
            debug_assert!(depth > 0);
            l.pin_depth.set(depth - 1);
            if depth == 1 {
                l.participant.epoch.store(IDLE, Ordering::SeqCst);
                let unpins = l.unpins.get() + 1;
                l.unpins.set(unpins);
                if unpins % COLLECT_EVERY == 0 {
                    try_collect();
                }
            }
        });
    }
}

/// An owned heap allocation that can be published into an [`Atomic`].
pub struct Owned<T> {
    inner: Box<T>,
}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Self {
        Self {
            inner: Box::new(value),
        }
    }

    /// Convert back into a plain `Box`.
    pub fn into_box(self) -> Box<T> {
        self.inner
    }

    /// Publish as a [`Shared`] under `_guard`'s pin.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: Box::into_raw(self.inner),
            _marker: PhantomData,
        }
    }
}

/// A pointer loaded from an [`Atomic`], valid while its guard is pinned.
pub struct Shared<'g, T> {
    raw: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            raw: std::ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    /// Whether the pointer is null.
    pub fn is_null(&self) -> bool {
        self.raw.is_null()
    }

    /// The raw pointer value.
    pub fn as_raw(&self) -> *const T {
        self.raw
    }

    /// Dereference under the guard's protection.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and loaded under the same pin that
    /// `'g` borrows.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.raw
    }

    /// Take back ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must be the only remaining owner (e.g. inside `Drop`).
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned {
            inner: Box::from_raw(self.raw),
        }
    }
}

/// Types that can be stored into an [`Atomic`].
pub trait Pointer<T> {
    /// Consume self, yielding the raw pointer to publish.
    fn into_raw(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_raw(self) -> *mut T {
        Box::into_raw(self.inner)
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_raw(self) -> *mut T {
        self.raw
    }
}

/// An atomic pointer to an epoch-managed heap allocation.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Allocate `value` and point at it.
    pub fn new(value: T) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// A null pointer.
    pub fn null() -> Self {
        Self {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Load the current pointer under `_guard`'s pin.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Store a new pointer (the previous value is NOT reclaimed).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_raw(), ord);
    }

    /// Swap in a new pointer, returning the previous one for retirement.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.swap(new.into_raw(), ord),
            _marker: PhantomData,
        }
    }
}

impl<T> Drop for Atomic<T> {
    fn drop(&mut self) {
        // Matches crossbeam: dropping an Atomic does NOT free the pointee;
        // owners reclaim through `unprotected()` + `into_owned` in their
        // own Drop impls.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn pin_unpin_tracks_depth() {
        let g1 = pin();
        let g2 = pin();
        drop(g1);
        drop(g2);
        LOCAL.with(|l| assert_eq!(l.pin_depth.get(), 0));
    }

    #[test]
    fn atomic_load_swap_roundtrip() {
        let a = Atomic::new(7u64);
        let guard = pin();
        assert_eq!(unsafe { *a.load(Ordering::Acquire, &guard).deref() }, 7);
        let old = a.swap(Owned::new(8), Ordering::AcqRel, &guard);
        assert_eq!(unsafe { *old.deref() }, 7);
        unsafe { guard.defer_destroy(old) };
        assert_eq!(unsafe { *a.load(Ordering::Acquire, &guard).deref() }, 8);
        drop(guard);
        // Clean up the final snapshot.
        unsafe {
            let g = unprotected();
            let p = a.load(Ordering::Relaxed, g);
            drop(p.into_owned());
        }
    }

    #[test]
    fn unprotected_defers_run_immediately() {
        let ran = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&ran);
        unsafe {
            unprotected().defer_unchecked(move || r.store(true, Ordering::SeqCst));
        }
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn deferred_drop_eventually_runs() {
        struct Flag(Arc<AtomicBool>);
        impl Drop for Flag {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicBool::new(false));
        let a = Atomic::new(Flag(Arc::clone(&dropped)));
        {
            let guard = pin();
            let old = a.swap(
                Owned::new(Flag(Arc::new(AtomicBool::new(false)))),
                Ordering::AcqRel,
                &guard,
            );
            unsafe { guard.defer_destroy(old) };
        }
        // Drive epoch advancement: repeated pin/unpin cycles collect.
        for _ in 0..10 * COLLECT_EVERY {
            drop(pin());
        }
        assert!(dropped.load(Ordering::SeqCst), "deferred destructor ran");
        unsafe {
            let g = unprotected();
            let p = a.load(Ordering::Relaxed, g);
            drop(p.into_owned());
        }
    }

    #[test]
    fn concurrent_swap_and_read_is_safe() {
        let a = Arc::new(Atomic::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let guard = pin();
                        let v = unsafe { *a.load(Ordering::Acquire, &guard).deref() };
                        assert!(v >= last);
                        last = v;
                    }
                })
            })
            .collect();
        for i in 1..=2_000u64 {
            let guard = pin();
            let old = a.swap(Owned::new(i), Ordering::AcqRel, &guard);
            unsafe { guard.defer_destroy(old) };
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        unsafe {
            let g = unprotected();
            let p = a.load(Ordering::Relaxed, g);
            drop(p.into_owned());
        }
    }
}
