//! Hermetic shim for `proptest`: a seeded random-input test harness
//! exposing the subset of the proptest API this workspace uses —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `Strategy` + `prop_map`, integer/float range strategies, `any`,
//! `collection::{vec, btree_set}`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and seed instead; rerun with `PROPTEST_SEED=<seed>` to
//! replay the exact input stream) and sizes/ranges are sampled uniformly.

pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 stream used to generate all test inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream seeded with `seed`.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `bound` (`bound` must be non-zero).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift rejection-free mapping; bias is negligible
            // for test generation purposes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Base seed for the whole run: `PROPTEST_SEED` env var or a fixed
    /// default so CI is reproducible by construction.
    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x0A17_5EED_2024_0001)
    }

    /// Seed for one `(property, case)` pair.
    pub fn case_seed(base: u64, property: &str, case: u32) -> u64 {
        let mut h = base ^ 0x517C_C1B7_2722_0A95;
        for b in property.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value from the rng stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value (`Just`).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }

    /// Full-range strategies for `any::<T>()`.
    pub trait Arbitrary: Sized {
        /// The strategy `any` returns.
        type Strategy: Strategy<Value = Self>;
        /// The full-range strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy yielding any value of an integer type.
    pub struct AnyInt<T>(std::marker::PhantomData<T>);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for AnyInt<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyInt<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyInt(std::marker::PhantomData)
        }
    }

    /// The full-range strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Collection size specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                return self.lo;
            }
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element` with a size from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `BTreeSet` of values from `element` with a target size from
    /// `size` (may come up short if the element space is exhausted).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts so tiny element domains terminate.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 4 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define seeded property tests. Each property runs `cases` times with
/// inputs drawn from its strategies; a failure reports the case number
/// and replay seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::base_seed();
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(base, stringify!($name), case);
                let mut rng = $crate::test_runner::TestRng::new(seed);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {case} (replay: PROPTEST_SEED={base}): {e}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(
            v in collection::vec(1u64..100, 5usize),
            s in collection::btree_set(1u64..1_000_000, 0..10usize),
        ) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(s.len() < 10);
            prop_assert!(v.iter().all(|&e| (1..100).contains(&e)));
        }

        #[test]
        fn oneof_and_map_compose(k in prop_oneof![
            1u64..10,
            (0u64..4).prop_map(|s| 1u64 << (s * 8)),
            any::<u64>().prop_map(|k| k | 1),
        ]) {
            prop_assert!(k >= 1);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(1u64..1_000, 0..50usize);
        let a = s.generate(&mut TestRng::new(42));
        let b = s.generate(&mut TestRng::new(42));
        assert_eq!(a, b);
    }
}
