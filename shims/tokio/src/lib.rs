//! Hermetic shim for `tokio`: a small, self-contained multi-thread
//! executor exposing exactly the API surface this workspace uses —
//! [`runtime::Builder`]/[`runtime::Runtime`] with `spawn` + `block_on`,
//! [`task::JoinHandle`], and [`sync::oneshot`] channels.
//!
//! The design is the textbook work-queue executor:
//!
//! * Each spawned future becomes a reference-counted task whose waker
//!   re-enqueues it onto a shared injector queue (state machine
//!   Idle → Queued → Running → {Idle, Notified, Done} so concurrent
//!   wakes never double-poll and never lose a notification).
//! * A fixed pool of worker threads pops tasks and polls them; workers
//!   park on a condvar when the queue is empty.
//! * `block_on` polls on the calling thread with a park/unpark waker —
//!   it does not require (or occupy) a worker.
//!
//! There is no I/O driver and no timer wheel: this workspace's serving
//! front-end is CPU-bound (in-memory index lookups) and does its own
//! time-based flushing with a plain thread. `Builder::enable_all` is
//! accepted and ignored so call sites stay source-compatible with the
//! upstream crate.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Wake, Waker};

/// Task states for the wake/poll handshake.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct Injector {
    queue: Mutex<std::collections::VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: Mutex<bool>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Injector {
    fn push(&self, task: Arc<Task>) {
        lock(&self.queue).push_back(task);
        self.available.notify_one();
    }

    fn pop(&self) -> Option<Arc<Task>> {
        let mut q = lock(&self.queue);
        loop {
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if *lock(&self.shutdown) {
                return None;
            }
            q = self
                .available
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One spawned future plus its scheduling state.
struct Task {
    state: AtomicU8,
    future: Mutex<Option<BoxFuture>>,
    injector: std::sync::Weak<Injector>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        if let Some(inj) = self.injector.upgrade() {
                            inj.push(Arc::clone(self));
                        }
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued/notified (a poll is coming) or done.
                _ => return,
            }
        }
    }
}

impl Task {
    /// Poll the task once; reschedule per the state machine.
    fn run(self: Arc<Self>) {
        self.state.store(RUNNING, Ordering::Release);
        let mut slot = lock(&self.future);
        let Some(mut fut) = slot.take() else {
            self.state.store(DONE, Ordering::Release);
            return;
        };
        let waker = Waker::from(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.state.store(DONE, Ordering::Release);
            }
            Poll::Pending => {
                *slot = Some(fut);
                drop(slot);
                // A wake that arrived while we were RUNNING moved us to
                // NOTIFIED; convert it into a re-enqueue. Otherwise go
                // idle and let the next wake enqueue us.
                if self
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    self.state.store(QUEUED, Ordering::Release);
                    if let Some(inj) = self.injector.upgrade() {
                        inj.push(self);
                    }
                }
            }
        }
    }
}

/// Task handles and spawning.
pub mod task {
    use super::*;

    pub(crate) struct JoinState<T> {
        pub(crate) value: Option<T>,
        pub(crate) waker: Option<Waker>,
    }

    /// An owned handle awaiting the output of a spawned task (a subset
    /// of tokio's: no abort, join never errors).
    pub struct JoinHandle<T> {
        pub(crate) state: Arc<Mutex<JoinState<T>>>,
    }

    /// The error type of awaiting a [`JoinHandle`]. The shim's handles
    /// cannot be aborted and panics propagate on the worker, so this is
    /// uninhabited in practice; it exists for source compatibility.
    #[derive(Debug)]
    pub struct JoinError(());

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "task failed")
        }
    }

    impl std::error::Error for JoinError {}

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut s = lock(&self.state);
            if let Some(v) = s.value.take() {
                return Poll::Ready(Ok(v));
            }
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    /// Yield back to the executor once: the task re-enqueues behind
    /// every currently runnable task and resumes on a later pass. The
    /// batching front-end uses this for group-commit leadership —
    /// yield, let concurrent submitters pile onto the queue, then flush.
    pub fn yield_now() -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Future returned by [`yield_now`].
    pub struct YieldNow {
        yielded: bool,
    }

    impl Future for YieldNow {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                return Poll::Ready(());
            }
            self.yielded = true;
            // Wake before returning Pending: the executor sees the
            // NOTIFIED state and re-enqueues at the back of the run
            // queue (or unparks `block_on`).
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// The multi-thread runtime.
pub mod runtime {
    use super::*;

    /// Builds a [`Runtime`] (subset of tokio's builder).
    pub struct Builder {
        workers: usize,
    }

    impl Builder {
        /// A builder for a multi-thread runtime.
        pub fn new_multi_thread() -> Self {
            Self {
                workers: std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(2),
            }
        }

        /// Set the worker thread count.
        pub fn worker_threads(&mut self, n: usize) -> &mut Self {
            self.workers = n.max(1);
            self
        }

        /// Accepted for source compatibility; the shim has no I/O or
        /// timer drivers to enable.
        pub fn enable_all(&mut self) -> &mut Self {
            self
        }

        /// Build the runtime, spawning its worker threads.
        pub fn build(&mut self) -> std::io::Result<Runtime> {
            let injector = Arc::new(Injector {
                queue: Mutex::new(std::collections::VecDeque::new()),
                available: Condvar::new(),
                shutdown: Mutex::new(false),
            });
            let workers = (0..self.workers)
                .map(|i| {
                    let inj = Arc::clone(&injector);
                    std::thread::Builder::new()
                        .name(format!("tokio-shim-{i}"))
                        .spawn(move || {
                            while let Some(task) = inj.pop() {
                                task.run();
                            }
                        })
                })
                .collect::<std::io::Result<Vec<_>>>()?;
            Ok(Runtime { injector, workers })
        }
    }

    /// A pool of worker threads polling spawned futures.
    pub struct Runtime {
        injector: Arc<Injector>,
        workers: Vec<std::thread::JoinHandle<()>>,
    }

    impl Runtime {
        /// A runtime with the default worker count.
        pub fn new() -> std::io::Result<Runtime> {
            Builder::new_multi_thread().build()
        }

        /// Spawn a future onto the pool, returning a handle to await
        /// its output.
        pub fn spawn<F>(&self, future: F) -> task::JoinHandle<F::Output>
        where
            F: Future + Send + 'static,
            F::Output: Send + 'static,
        {
            let state = Arc::new(Mutex::new(task::JoinState {
                value: None,
                waker: None,
            }));
            let out = Arc::clone(&state);
            let wrapped = async move {
                let v = future.await;
                let waker = {
                    let mut s = lock(&out);
                    s.value = Some(v);
                    s.waker.take()
                };
                if let Some(w) = waker {
                    w.wake();
                }
            };
            let task = Arc::new(Task {
                state: AtomicU8::new(QUEUED),
                future: Mutex::new(Some(Box::pin(wrapped))),
                injector: Arc::downgrade(&self.injector),
            });
            self.injector.push(task);
            task::JoinHandle { state }
        }

        /// Drive a future to completion on the calling thread.
        pub fn block_on<F: Future>(&self, future: F) -> F::Output {
            struct ThreadWaker(std::thread::Thread);
            impl Wake for ThreadWaker {
                fn wake(self: Arc<Self>) {
                    self.0.unpark();
                }
                fn wake_by_ref(self: &Arc<Self>) {
                    self.0.unpark();
                }
            }
            let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
            let mut cx = Context::from_waker(&waker);
            let mut future = std::pin::pin!(future);
            loop {
                match future.as_mut().poll(&mut cx) {
                    Poll::Ready(v) => return v,
                    Poll::Pending => std::thread::park(),
                }
            }
        }
    }

    impl Drop for Runtime {
        fn drop(&mut self) {
            *lock(&self.injector.shutdown) = true;
            self.injector.available.notify_all();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

/// Synchronization primitives.
pub mod sync {
    /// A one-shot value channel whose receiver is a future.
    pub mod oneshot {
        use super::super::*;

        struct Chan<T> {
            value: Option<T>,
            waker: Option<Waker>,
            closed: bool,
        }

        /// The sending half; consumed by [`Sender::send`].
        pub struct Sender<T> {
            chan: Arc<Mutex<Chan<T>>>,
        }

        /// The receiving half; await it for the value.
        pub struct Receiver<T> {
            chan: Arc<Mutex<Chan<T>>>,
        }

        /// Error returned when the sender dropped without sending.
        #[derive(Debug, PartialEq, Eq)]
        pub struct RecvError(());

        impl std::fmt::Display for RecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "oneshot sender dropped")
            }
        }

        impl std::error::Error for RecvError {}

        /// Create a connected sender/receiver pair.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let chan = Arc::new(Mutex::new(Chan {
                value: None,
                waker: None,
                closed: false,
            }));
            (
                Sender {
                    chan: Arc::clone(&chan),
                },
                Receiver { chan },
            )
        }

        impl<T> Sender<T> {
            /// Send the value, waking the receiver. Returns the value
            /// back if the receiver was dropped.
            pub fn send(self, value: T) -> Result<(), T> {
                let waker = {
                    let mut c = lock(&self.chan);
                    if c.closed {
                        return Err(value);
                    }
                    c.value = Some(value);
                    c.waker.take()
                };
                if let Some(w) = waker {
                    w.wake();
                }
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let waker = {
                    let mut c = lock(&self.chan);
                    c.closed = true;
                    c.waker.take()
                };
                if let Some(w) = waker {
                    w.wake();
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                lock(&self.chan).closed = true;
            }
        }

        impl<T> Future for Receiver<T> {
            type Output = Result<T, RecvError>;

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut c = lock(&self.chan);
                if let Some(v) = c.value.take() {
                    return Poll::Ready(Ok(v));
                }
                if c.closed {
                    return Poll::Ready(Err(RecvError(())));
                }
                c.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::runtime::Builder;
    use super::sync::oneshot;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn block_on_returns_ready_value() {
        let rt = Builder::new_multi_thread()
            .worker_threads(2)
            .build()
            .unwrap();
        assert_eq!(rt.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawn_and_join_many() {
        let rt = Builder::new_multi_thread()
            .worker_threads(4)
            .build()
            .unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..100)
            .map(|i| {
                let c = Arc::clone(&counter);
                rt.spawn(async move {
                    c.fetch_add(1, Ordering::Relaxed);
                    i * 2
                })
            })
            .collect();
        let total: usize = rt.block_on(async {
            let mut sum = 0;
            for h in handles {
                sum += h.await.unwrap();
            }
            sum
        });
        assert_eq!(total, (0..100).map(|i| i * 2).sum());
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn oneshot_crosses_tasks() {
        let rt = Builder::new_multi_thread()
            .worker_threads(2)
            .build()
            .unwrap();
        let (tx, rx) = oneshot::channel::<u64>();
        let h = rt.spawn(async move { rx.await.unwrap() });
        // Send from a third task so the receiver genuinely suspends.
        rt.spawn(async move {
            tx.send(7).unwrap();
        });
        assert_eq!(rt.block_on(async { h.await.unwrap() }), 7);
    }

    #[test]
    fn oneshot_dropped_sender_errors() {
        let rt = Builder::new_multi_thread()
            .worker_threads(1)
            .build()
            .unwrap();
        let (tx, rx) = oneshot::channel::<u64>();
        drop(tx);
        assert!(rt.block_on(rx).is_err());
    }

    #[test]
    fn tasks_wake_each_other_in_a_chain() {
        // A chain of oneshots: task i forwards to task i+1. Exercises
        // suspended-task wakeups through the injector repeatedly.
        let rt = Builder::new_multi_thread()
            .worker_threads(3)
            .build()
            .unwrap();
        let (first_tx, mut rx) = oneshot::channel::<u64>();
        let mut last = None;
        for _ in 0..50 {
            let (tx, next_rx) = oneshot::channel::<u64>();
            let prev_rx = rx;
            rt.spawn(async move {
                let v = prev_rx.await.unwrap();
                let _ = tx.send(v + 1);
            });
            rx = next_rx;
            last = Some(());
        }
        assert!(last.is_some());
        first_tx.send(0).unwrap();
        assert_eq!(rt.block_on(async { rx.await.unwrap() }), 50);
    }

    #[test]
    fn runtime_drop_joins_workers() {
        let rt = Builder::new_multi_thread()
            .worker_threads(2)
            .build()
            .unwrap();
        let h = rt.spawn(async { 5u32 });
        assert_eq!(rt.block_on(async { h.await.unwrap() }), 5);
        drop(rt); // must not hang
    }

    #[test]
    fn yield_now_interleaves_tasks_on_one_worker() {
        // One worker, two long-running tasks that yield every step: once
        // both are enqueued, yielding forces strict alternation, so the
        // combined log must interleave rather than run one task to
        // completion first.
        let rt = Builder::new_multi_thread()
            .worker_threads(1)
            .build()
            .unwrap();
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let handles: Vec<_> = [b'a', b'b']
            .into_iter()
            .map(|id| {
                let log = Arc::clone(&log);
                rt.spawn(async move {
                    for _ in 0..1000 {
                        log.lock().unwrap().push(id);
                        super::task::yield_now().await;
                    }
                })
            })
            .collect();
        rt.block_on(async {
            for h in handles {
                h.await.unwrap();
            }
        });
        let got = log.lock().unwrap().clone();
        assert_eq!(got.len(), 2000);
        let switches = got.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches > 100,
            "tasks barely interleaved: {switches} switches"
        );
    }

    #[test]
    fn yield_now_completes_under_block_on() {
        let rt = Builder::new_multi_thread()
            .worker_threads(1)
            .build()
            .unwrap();
        rt.block_on(async {
            for _ in 0..100 {
                super::task::yield_now().await;
            }
        });
    }
}
