//! Hermetic shim for `criterion`: a small wall-clock benchmark harness
//! exposing the API surface this workspace's benches use. Each benchmark
//! runs a short warm-up, then `sample_size` timed samples, and prints the
//! per-sample mean plus element throughput when configured.
//!
//! No statistics beyond mean/min — this shim exists so `cargo bench`
//! builds and runs hermetically; for publication-grade numbers swap the
//! workspace dependency back to upstream criterion.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// The timing driver passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration durations for the enclosing run.
    last_mean: Duration,
}

impl Bencher {
    /// Time `f`, called once per sample after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            total += t0.elapsed();
        }
        self.last_mean = total / self.samples as u32;
    }

    /// Time `routine(setup())`, excluding the setup cost.
    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut routine: F,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.last_mean = total / self.samples as u32;
    }
}

fn report(group: &str, label: &str, mean: Duration, throughput: Option<Throughput>) {
    let mut line = format!("bench {group}/{label}: {mean:?}/iter");
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line += &format!(" ({:.3} Melem/s)", n as f64 / secs / 1e6);
                }
                Throughput::Bytes(n) => {
                    line += &format!(" ({:.3} MiB/s)", n as f64 / secs / (1 << 20) as f64);
                }
            }
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, tp: Throughput) {
        self.throughput = Some(tp);
    }

    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = Some(n.max(1));
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            samples: self
                .sample_size
                .unwrap_or(self.criterion.sample_size)
                .max(1),
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        report(&self.name, label, b.last_mean, self.throughput);
    }

    /// Run a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        self.run(&id.label, f);
    }

    /// Run a benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.label, |b| f(b, input));
    }

    /// Finish the group (printing happens per-bench; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        report("bench", name, b.last_mean, None);
    }
}

/// Define a group of benchmark functions with an optional shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn group_machinery_runs() {
        benches();
    }

    #[test]
    fn iter_with_setup_times_routine_only() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u64; 10], |v| v.iter().sum::<u64>())
        });
    }
}
