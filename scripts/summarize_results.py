#!/usr/bin/env python3
"""Summarize experiment outputs in results/ into ranking tables.

Reads the `#json` lines every bench binary emits and prints, per
experiment: the entries sorted by throughput (or metric value), plus
average-rank tables for multi-cell figures. Pure stdlib.

Usage: python3 scripts/summarize_results.py [results_dir]
"""

import collections
import json
import pathlib
import sys


def load(results_dir: pathlib.Path):
    rows = []
    for f in sorted(results_dir.glob("*.txt")):
        for line in f.read_text().splitlines():
            if line.startswith("#json "):
                rows.append(json.loads(line[6:]))
    return rows


def main():
    results_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    rows = load(results_dir)
    if not rows:
        print(f"no #json rows found under {results_dir}/", file=sys.stderr)
        return 1

    by_exp = collections.defaultdict(list)
    for r in rows:
        by_exp[r["experiment"]].append(r)

    for exp, rs in sorted(by_exp.items()):
        print(f"\n== {exp} ({len(rs)} rows)")
        # Group into cells: one ranking per (dataset, workload, x).
        cells = collections.defaultdict(dict)
        for r in rs:
            key = (r.get("dataset", ""), r.get("workload", ""), r.get("x"))
            val = r.get("mops")
            if val is None:
                val = r.get("value")
            cells[key][(r["index"], r.get("metric", ""))] = val

        ranks = collections.defaultdict(list)
        wins = collections.Counter()
        for key, d in sorted(cells.items(), key=str):
            order = sorted(
                ((n, v) for (n, _), v in d.items() if v is not None),
                key=lambda kv: -kv[1],
            )
            if not order:
                continue
            label = " ".join(str(k) for k in key if k not in ("", None))
            print(f"  {label:<28} " + " | ".join(f"{n}:{v:.3g}" for n, v in order))
            if len(order) > 2:
                wins[order[0][0]] += 1
                for i, (n, _) in enumerate(order):
                    ranks[n].append(i + 1)

        if ranks:
            print("  -- average ranks --")
            for n, r in sorted(ranks.items(), key=lambda kv: sum(kv[1]) / len(kv[1])):
                print(f"     {n:<14} {sum(r)/len(r):5.2f}  (wins {wins[n]})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
