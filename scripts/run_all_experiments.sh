#!/usr/bin/env bash
# Regenerate every table/figure of the paper at laptop scale.
# Results land in results/<name>.txt (table + #json lines).
set -u
cd "$(dirname "$0")/.."
mkdir -p results

KEYS=${KEYS:-1m}
THREADS=${THREADS:-4}
OPS=${OPS:-50k}
# Construction thread counts the bulk_build sweep records (serial
# baseline first; see results/BENCH_bulk_build.json).
BUILD_THREADS=${BUILD_THREADS:-1,2,4,8}
# Batch widths the batch_lookup sweep records (width 1 = scalar
# baseline; see results/BENCH_batch_lookup.json).
BATCH_WIDTHS=${BATCH_WIDTHS:-1,8,16,32,64}
BIN=target/release

run() {
    local name="$1"; shift
    echo ">>> $name $*"
    "$BIN/$name" "$@" > "results/$name$SUFFIX.txt" 2>&1
    grep -v '#json' "results/$name$SUFFIX.txt" | tail -n +2 | head -50
}

SUFFIX=""
run table1 --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig3   --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig4   --keys 500k
run fig6   --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig7   --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig8   --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig9   --keys "$KEYS" --threads "$THREADS" --ops 25k
run fig10  --keys "$KEYS"
run ablation --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run bulk_build --keys "$KEYS" --build-threads "$BUILD_THREADS"
# The machine-readable build-cost baseline (JSON lines, one row object
# per line — the shape scripts/summarize_results.py parses).
grep '#json' "results/bulk_build$SUFFIX.txt" | sed 's/^#json //' \
    > "results/BENCH_bulk_build$SUFFIX.json"
# SIMD kill-switch positions the batch_lookup sweep records (scalar
# baseline first, so the simd-on pass emits speedup_simd rows).
SIMD_MODES=${SIMD_MODES:-off,on}
run batch_lookup --keys "$KEYS" --ops "$OPS" --batch-width "$BATCH_WIDTHS" --simd "$SIMD_MODES"
# The machine-readable batched-lookup baseline (same JSON-lines shape).
grep '#json' "results/batch_lookup$SUFFIX.txt" | sed 's/^#json //' \
    > "results/BENCH_batch_lookup$SUFFIX.json"
run retrain_shift --threads "$THREADS" --ops "$OPS" --bucket-ms "${BUCKET_MS:-50}"
# The machine-readable throughput-over-time curves, inline vs background
# retraining (same JSON-lines shape).
grep '#json' "results/retrain_shift$SUFFIX.txt" | sed 's/^#json //' \
    > "results/BENCH_retrain_shift$SUFFIX.json"
echo "ALL EXPERIMENTS DONE"
