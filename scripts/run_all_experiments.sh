#!/usr/bin/env bash
# Regenerate every table/figure of the paper at laptop scale.
# Results land in results/<name>.txt (table + #json lines).
set -u
cd "$(dirname "$0")/.."
mkdir -p results

KEYS=${KEYS:-1m}
THREADS=${THREADS:-4}
OPS=${OPS:-50k}
BIN=target/release

run() {
    local name="$1"; shift
    echo ">>> $name $*"
    "$BIN/$name" "$@" > "results/$name$SUFFIX.txt" 2>&1
    grep -v '#json' "results/$name$SUFFIX.txt" | tail -n +2 | head -50
}

SUFFIX=""
run table1 --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig3   --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig4   --keys 500k
run fig6   --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig7   --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig8   --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
run fig9   --keys "$KEYS" --threads "$THREADS" --ops 25k
run fig10  --keys "$KEYS"
run ablation --keys "$KEYS" --threads "$THREADS" --ops "$OPS"
echo "ALL EXPERIMENTS DONE"
