//! Head-to-head: ALT-index against every baseline on one balanced
//! workload — a miniature of the paper's headline experiment you can run
//! in seconds.
//!
//! ```sh
//! cargo run --release --example hybrid_vs_baselines
//! ```

use alt::alt_index::AltIndex;
use alt::art::Art;
use alt::baselines::{AlexLike, FinedexLike, LippLike, XIndexLike};
use alt::datasets::{generate_pairs, Dataset};
use alt::index_api::{BulkLoad, ConcurrentIndex};
use alt::workloads::{run_workload, DriverConfig, Mix, WorkloadPlan};
use std::sync::Arc;

fn main() {
    let n = 400_000;
    let dataset = Dataset::Osm;
    let pairs = generate_pairs(dataset, n, 3);
    let bulk: Vec<(u64, u64)> = pairs.iter().step_by(2).copied().collect();
    let reserve: Vec<u64> = pairs.iter().skip(1).step_by(2).map(|p| p.0).collect();
    let loaded: Vec<u64> = bulk.iter().map(|p| p.0).collect();

    println!(
        "dataset = {}, {} loaded + {} reserved, balanced 50/50, zipf 0.99",
        dataset.name(),
        bulk.len(),
        reserve.len()
    );

    let indexes: Vec<(&str, Arc<dyn ConcurrentIndex>)> = vec![
        ("ALT-index", Arc::new(AltIndex::bulk_load(&bulk))),
        ("ART", Arc::new(Art::bulk_load(&bulk))),
        ("ALEX+", Arc::new(AlexLike::bulk_load(&bulk))),
        ("LIPP+", Arc::new(LippLike::bulk_load(&bulk))),
        ("XIndex", Arc::new(XIndexLike::bulk_load(&bulk))),
        ("FINEdex", Arc::new(FinedexLike::bulk_load(&bulk))),
    ];

    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "index", "Mops/s", "p50 us", "p99.9 us", "MiB"
    );
    for (name, idx) in indexes {
        let plan = WorkloadPlan::new(loaded.clone(), reserve.clone(), Mix::BALANCED, 0.99, 9);
        let cfg = DriverConfig {
            threads,
            ops_per_thread: 100_000,
            latency_sample_every: 8,
            batch: 0,
        };
        let r = run_workload(&idx, &plan, &cfg);
        println!(
            "{name:>10} {:>12.3} {:>12.2} {:>12.2} {:>12.1}",
            r.mops,
            r.p50_us,
            r.p999_us,
            idx.memory_usage() as f64 / (1 << 20) as f64
        );
    }
}
