//! A miniature in-memory key-value "table" served by ALT-index under a
//! concurrent mixed workload — the memory-database scenario the paper's
//! introduction motivates.
//!
//! Eight worker threads run a read-write-balanced mix (zipfian reads,
//! uniform inserts) against one shared index while a background thread
//! periodically snapshots structural statistics, demonstrating that
//! retraining keeps the learned layer dominant as data grows.
//!
//! ```sh
//! cargo run --release --example memdb
//! ```

use alt::alt_index::AltIndex;
use alt::datasets::{generate_pairs, Dataset};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let n = 1_000_000;
    let pairs = generate_pairs(Dataset::Fb, n, 7);
    let (bulk, reserve): (Vec<_>, Vec<_>) =
        pairs
            .iter()
            .enumerate()
            .fold((Vec::new(), Vec::new()), |(mut b, mut r), (i, &(k, v))| {
                if i % 2 == 0 {
                    b.push((k, v));
                } else {
                    r.push(k);
                }
                (b, r)
            });
    let idx = Arc::new(AltIndex::bulk_load_default(&bulk));
    println!("bulk-loaded {} keys from the fb-like dataset", idx.len());

    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicUsize::new(0));

    // Statistics snapshotter: the "DBA view" of the index.
    let monitor = {
        let idx = Arc::clone(&idx);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(300));
                let s = idx.stats();
                println!(
                    "  [monitor] keys={} models={} learned={:.1}% art={} retrains={}",
                    idx.len(),
                    s.num_models,
                    s.learned_share() * 100.0,
                    s.keys_in_art,
                    s.retrains
                );
            }
        })
    };

    let threads = 8usize;
    let per_thread = reserve.len() / threads;
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let idx = Arc::clone(&idx);
            let ops = Arc::clone(&total_ops);
            let mine: Vec<u64> = reserve[t * per_thread..(t + 1) * per_thread].to_vec();
            let bulk_keys: Vec<u64> = bulk.iter().map(|p| p.0).collect();
            std::thread::spawn(move || {
                let mut local = 0usize;
                for (i, &k) in mine.iter().enumerate() {
                    // 50/50 mix: one insert, one read.
                    idx.insert(k, k ^ 0xFEED).expect("fresh key");
                    let probe = bulk_keys[(i * 2654435761) % bulk_keys.len()];
                    assert!(idx.get(probe).is_some(), "bulk key {probe} lost");
                    local += 2;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    monitor.join().unwrap();

    let done = total_ops.load(Ordering::Relaxed);
    println!(
        "ran {done} ops across {threads} threads in {secs:.2}s ({:.2} Mops/s)",
        done as f64 / secs / 1e6
    );

    // Full verification pass: every key (bulk + inserted) must resolve.
    for &(k, v) in &bulk {
        assert_eq!(idx.get(k), Some(v));
    }
    for &k in &reserve[..threads * per_thread] {
        assert_eq!(idx.get(k), Some(k ^ 0xFEED));
    }
    println!("verification passed: {} keys consistent", idx.len());
}
