//! Exploring the paper's ε tuning rule (§III-D): sweep the GPL error
//! bound on a hard dataset and watch the model count, conflict share, and
//! lookup throughput trade off — then compare with the suggested
//! `n / 1000` setting.
//!
//! ```sh
//! cargo run --release --example tune_error_bound
//! ```

use alt::alt_index::{AltConfig, AltIndex};
use alt::datasets::{generate_pairs, Dataset};
use std::time::Instant;

fn main() {
    let n = 500_000;
    let pairs = generate_pairs(Dataset::Longlat, n, 11);
    println!("dataset = longlat (hardest CDF), n = {n}");
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>11}",
        "epsilon", "models", "learned%", "art keys", "Mlookups/s"
    );

    let probe: Vec<u64> = pairs.iter().step_by(17).map(|p| p.0).collect();
    let mut best = (0.0f64, 0.0f64);
    for eps in [16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0] {
        let idx = AltIndex::bulk_load_with(
            &pairs,
            AltConfig {
                epsilon: Some(eps),
                ..Default::default()
            },
        );
        let stats = idx.stats();
        let t0 = Instant::now();
        let mut hits = 0usize;
        for &k in &probe {
            hits += idx.get(k).is_some() as usize;
        }
        let mops = probe.len() as f64 / t0.elapsed().as_secs_f64() / 1e6;
        assert_eq!(hits, probe.len(), "all probed keys must resolve");
        println!(
            "{eps:>10.0} {:>9} {:>11.1}% {:>12} {mops:>11.2}",
            stats.num_models,
            stats.learned_share() * 100.0,
            stats.keys_in_art
        );
        if mops > best.1 {
            best = (eps, mops);
        }
    }

    // The paper's rule of thumb.
    let suggested = n as f64 / 1000.0;
    let idx = AltIndex::bulk_load_default(&pairs);
    let t0 = Instant::now();
    for &k in &probe {
        let _ = idx.get(k);
    }
    let mops = probe.len() as f64 / t0.elapsed().as_secs_f64() / 1e6;
    println!(
        "\nsuggested eps = n/1000 = {suggested:.0}: {mops:.2} Mlookups/s \
         (sweep best was {:.2} at eps = {:.0})",
        best.1, best.0
    );
    println!(
        "the suggested setting should sit inside the paper's \"stable area\" — \
         within a modest factor of the sweep optimum"
    );
}
