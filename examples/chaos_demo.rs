//! Drive the concurrency testkit end to end from the public API.
//!
//! ```sh
//! cargo run --release --example chaos_demo                    # hooks compiled out
//! cargo run --release --example chaos_demo --features chaos   # perturbed run
//! cargo run --release --example chaos_demo --features chaos -- 31337
//! ```
//!
//! With `--features chaos` the run installs a seeded schedule, hammers an
//! `AltIndex` with a shared-key scenario plus ART with a disjoint one,
//! reports the chaos-point hit count, and oracle-checks both histories.
//! Without the feature the same binary shows the hooks are compiled out
//! (zero hits).

use alt_index::AltIndex;
use index_api::BulkLoad;
use testkit::harness::Scenario;

fn main() {
    let seed: u64 = match std::env::args().nth(1) {
        None => 42,
        Some(s) => match s.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("usage: chaos_demo [seed (decimal u64)] — got {s:?}");
                std::process::exit(2);
            }
        },
    };

    let before = testkit::chaos::hits();

    let shared = Scenario::shared(seed);
    let alt = AltIndex::bulk_load(&shared.initial_pairs());
    match shared.run(&alt) {
        Ok(()) => println!("alt-index shared-key scenario (seed {seed}): oracle clean"),
        Err(report) => {
            eprintln!("alt-index shared-key scenario (seed {seed}) FAILED:\n{report}");
            std::process::exit(1);
        }
    }

    let disjoint = Scenario::disjoint(seed);
    let art = art::Art::bulk_load(&disjoint.initial_pairs());
    match disjoint.run(&art) {
        Ok(()) => println!("art disjoint-key scenario (seed {seed}): oracle clean"),
        Err(report) => {
            eprintln!("art disjoint-key scenario (seed {seed}) FAILED:\n{report}");
            std::process::exit(1);
        }
    }

    let hits = testkit::chaos::hits() - before;
    if cfg!(feature = "chaos") {
        println!("chaos points hit: {hits} (feature `chaos` on)");
        assert!(hits > 0, "chaos feature on but no instrumented site fired");
    } else {
        println!("chaos points hit: {hits} (feature `chaos` off — hooks compiled out)");
        assert_eq!(hits, 0, "hooks must vanish without the chaos feature");
    }
}
