//! Quickstart: build an ALT-index, run the basic operations, and peek at
//! the two-tier structure.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use alt::alt_index::AltIndex;

fn main() {
    // Bulk-load one million sorted keys (the learned layer absorbs what
    // fits its linear models; the rest spills into ART).
    let pairs: Vec<(u64, u64)> = (1..=1_000_000u64).map(|k| (k * 8, k)).collect();
    let idx = AltIndex::bulk_load_default(&pairs);
    println!("loaded {} keys, epsilon = {}", idx.len(), idx.epsilon());

    // Point lookups.
    assert_eq!(idx.get(8), Some(1));
    assert_eq!(idx.get(9), None);

    // Inserts: empty predicted slots absorb them in place; occupied ones
    // route to the ART layer through the fast pointer buffer.
    for k in 1..=1_000u64 {
        idx.insert(k * 8 + 3, k).unwrap();
    }
    assert_eq!(idx.get(11), Some(1));

    // Updates and removals work across both layers transparently.
    idx.update(11, 42).unwrap();
    assert_eq!(idx.get(11), Some(42));
    assert_eq!(idx.remove(11), Some(42));

    // Range scans merge the learned layer with ART.
    let mut out = Vec::new();
    idx.range(8, 80, &mut out);
    println!(
        "range [8, 80] -> {} entries, first = {:?}",
        out.len(),
        out.first()
    );

    // Structural introspection (the paper's §IV-H metrics).
    let stats = idx.stats();
    println!(
        "models = {}, learned share = {:.1}%, ART keys = {}, fast pointers = {} ({} unmerged), memory = {:.1} MiB",
        stats.num_models,
        stats.learned_share() * 100.0,
        stats.keys_in_art,
        stats.fast_pointers,
        stats.fast_pointers_unmerged,
        stats.memory_total() as f64 / (1 << 20) as f64,
    );
}
