//! Drive the hot-path metrics subsystem end to end from the public API.
//!
//! ```sh
//! cargo run --release --example metrics_demo --features metrics
//! cargo run --release --example metrics_demo --features "metrics chaos"
//! ```
//!
//! Builds an ALT-index, runs a concurrent read/insert/scan mix that
//! exercises every instrumented layer (slot versions, fast pointers,
//! scans, retrains, ART OLC), then prints the [`obs::MetricsSnapshot`]
//! delta for the measured region. With `chaos` also enabled, a seeded
//! schedule perturbs the interleavings so the retry counters light up
//! even on an otherwise quiet machine.

use alt::alt_index::AltIndex;
use std::sync::Arc;

fn main() {
    #[cfg(feature = "chaos")]
    let _guard = testkit::chaos::install_schedule(0xA17_1DE, 64);

    // Quadratic keys are hard for linear models: the directory holds many
    // GPL models (so fast pointers actually register — a single model has
    // no upper neighbor to resolve an LCA against) and inserts between
    // the squares conflict into ART.
    let pairs: Vec<(u64, u64)> = (1..=100_000u64).map(|i| (i * i, i)).collect();
    let idx = Arc::new(AltIndex::bulk_load_default(&pairs));

    let before = obs::snapshot();

    // Two insert threads hammering one dense region (drives overflow
    // inserts through the fast-pointer path and triggers retrains), a
    // point-read thread, and a scan thread racing the retrains.
    let hot = 2_500_000_000u64; // inside the bulk range (squares reach 1e10)
    let mut handles = Vec::new();
    for t in 0..2u64 {
        let idx = Arc::clone(&idx);
        handles.push(std::thread::spawn(move || {
            for i in 0..60_000u64 {
                let k = hot + 1 + (i * 2 + t) * 3;
                let _ = idx.insert(k, i);
            }
        }));
    }
    {
        let idx = Arc::clone(&idx);
        handles.push(std::thread::spawn(move || {
            for i in 1..=150_000u64 {
                let k = (i % 100_000 + 1).pow(2);
                std::hint::black_box(idx.get(k));
            }
        }));
    }
    {
        let idx = Arc::clone(&idx);
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            for i in 0..1_500u64 {
                out.clear();
                idx.range(hot + i * 100, hot + i * 100 + 50_000, &mut out);
                std::hint::black_box(out.len());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let delta = obs::snapshot().delta(&before);
    println!("metrics for the measured region:\n{}", delta.render());

    assert!(
        delta.get(obs::Counter::FastPtrJumpHit) + delta.get(obs::Counter::FastPtrDeopt) > 0,
        "inserts routed to ART must have gone through the fast-pointer path"
    );
    println!(
        "total events recorded: {} (feature `metrics` on)",
        delta.total_events()
    );
}
