//! Umbrella crate for the ALT-index reproduction: re-exports every
//! workspace crate so examples and integration tests can use one
//! dependency.
//!
//! See the `alt-index` crate for the paper's core contribution and
//! `DESIGN.md` at the repository root for the full system inventory.

pub use alt_index;
pub use art;
pub use baselines;
pub use datasets;
pub use index_api;
pub use learned;
pub use workloads;
